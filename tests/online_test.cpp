// Streaming online learning: hd::VersionedBank epoch-swap semantics, the
// online.* chaos matrix, drift-stream determinism, and the serve::Engine
// update submission path.
//
// The robustness contract under test:
//   * readers only ever observe bitwise-consistent published versions —
//     never a torn bank, never a bank paired with another version's norms —
//     with zero locks on the read path (the TSan property test);
//   * a failed or poisoned update NEVER corrupts the serving bank: the
//     previous version stays live, the rollback is a typed status and an
//     EngineStats counter (online.update_nan / online.publish_crash);
//   * a killed learning stream resumes bitwise-identically from its last
//     NSHDKPT1 bank snapshot, and a corrupt snapshot is rejected typed
//     without touching the live bank (online.snapshot_corrupt).
//
// Runs under ASan/TSan/UBSan via the check_* targets (ctest -L online).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "data/drift_stream.hpp"
#include "data/synth_cifar.hpp"
#include "hd/versioned_bank.hpp"
#include "models/zoo.hpp"
#include "serve/engine.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace nshd {
namespace {

using hd::HdClassifier;
using hd::Hypervector;
using hd::MassConfig;
using hd::Similarity;
using hd::UpdateGuard;
using hd::UpdateStatus;
using hd::VersionedBank;

// --- toy HD problem (hd_test idiom) ---

struct ToyProblem {
  std::vector<Hypervector> train, test;
  std::vector<std::int64_t> train_labels, test_labels;
  std::int64_t dim = 0, classes = 0;
};

ToyProblem make_toy(std::int64_t dim, std::int64_t classes,
                    std::int64_t per_class, double flip_fraction,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  ToyProblem p;
  p.dim = dim;
  p.classes = classes;
  std::vector<Hypervector> prototypes;
  for (std::int64_t c = 0; c < classes; ++c)
    prototypes.push_back(Hypervector::random(dim, rng));
  const auto noisy = [&](std::int64_t c) {
    Hypervector h = prototypes[static_cast<std::size_t>(c)];
    const auto flips =
        static_cast<std::int64_t>(flip_fraction * static_cast<double>(dim));
    for (std::int64_t f = 0; f < flips; ++f)
      h.flip(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(dim))));
    return h;
  };
  for (std::int64_t c = 0; c < classes; ++c) {
    for (std::int64_t i = 0; i < per_class; ++i) {
      p.train.push_back(noisy(c));
      p.train_labels.push_back(c);
      p.test.push_back(noisy(c));
      p.test_labels.push_back(c);
    }
  }
  return p;
}

/// Trained toy bank: bundling plus a few MASS epochs.
HdClassifier trained_toy_bank(const ToyProblem& p, std::int64_t epochs = 5) {
  HdClassifier clf(p.classes, p.dim);
  clf.bundle_init(p.train, p.train_labels);
  MassConfig mass;
  for (std::int64_t e = 0; e < epochs; ++e)
    clf.mass_epoch(p.train, p.train_labels, mass);
  return clf;
}

std::vector<float> bank_bits(const HdClassifier& clf) {
  const float* data = clf.bank().data();
  return {data, data + clf.num_classes() * clf.dim()};
}

::testing::AssertionResult banks_bitwise_equal(const HdClassifier& a,
                                               const HdClassifier& b) {
  if (a.num_classes() != b.num_classes() || a.dim() != b.dim())
    return ::testing::AssertionFailure()
           << "shape mismatch: [" << a.num_classes() << "," << a.dim()
           << "] vs [" << b.num_classes() << "," << b.dim() << "]";
  const std::vector<float> lhs = bank_bits(a), rhs = bank_bits(b);
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    if (std::memcmp(&lhs[i], &rhs[i], sizeof(float)) != 0)
      return ::testing::AssertionFailure()
             << "banks differ at element " << i << ": " << lhs[i] << " vs "
             << rhs[i];
  }
  return ::testing::AssertionSuccess();
}

class Online : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::disarm_all();
    dir_ = std::filesystem::temp_directory_path() /
           ("nshd_online_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    util::fault::disarm_all();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  std::filesystem::path dir_;
};

// --- VersionedBank epoch-swap semantics ---

TEST_F(Online, PublishIsolatesSnapshotsAndCountsVersions) {
  const ToyProblem p = make_toy(1024, 4, 15, 0.25, 31);
  VersionedBank bank(trained_toy_bank(p));
  EXPECT_EQ(bank.version(), 0u);

  // A snapshot taken before an update must be bitwise-unchanged after it.
  const VersionedBank::Snapshot before = bank.snapshot();
  const std::vector<float> before_bits = bank_bits(before->bank);

  MassConfig mass;
  double train_accuracy = 0.0;
  ASSERT_EQ(bank.mass_epoch(p.train, p.train_labels, mass, &train_accuracy),
            UpdateStatus::kOk);
  EXPECT_GT(train_accuracy, 0.9);
  EXPECT_EQ(bank.version(), 1u);
  EXPECT_EQ(before->version, 0u);
  EXPECT_EQ(bank_bits(before->bank), before_bits);

  // Structural growth and retirement publish too.
  std::vector<Hypervector> shots(p.train.begin(), p.train.begin() + 5);
  std::int64_t new_class = -1;
  ASSERT_EQ(bank.add_class(shots, &new_class), UpdateStatus::kOk);
  EXPECT_EQ(new_class, 4);
  EXPECT_EQ(bank.num_classes(), 5);
  EXPECT_EQ(bank.version(), 2u);
  ASSERT_EQ(bank.remove_class(4), UpdateStatus::kOk);
  EXPECT_EQ(bank.num_classes(), 4);
  EXPECT_EQ(bank.version(), 3u);

  // The original snapshot still scores correctly on its own epoch.
  EXPECT_GT(before->bank.evaluate(p.test, p.test_labels), 0.9);
}

TEST_F(Online, RemoveClassShiftsRowsAndKeepsNormsFresh) {
  const ToyProblem p = make_toy(512, 4, 10, 0.2, 37);
  HdClassifier clf = trained_toy_bank(p);
  const std::vector<float> bits = bank_bits(clf);
  const std::vector<float> norms = clf.class_norms();

  clf.remove_class(1);
  ASSERT_EQ(clf.num_classes(), 3);
  // Rows 0, 2, 3 survive as 0, 1, 2 — bitwise.
  const std::int64_t d = clf.dim();
  for (std::int64_t r = 0; r < 3; ++r) {
    const std::int64_t src = r == 0 ? 0 : r + 1;
    for (std::int64_t i = 0; i < d; ++i)
      ASSERT_EQ(clf.class_vector(r)[i], bits[static_cast<std::size_t>(src * d + i)]);
  }
  // Cached norms were erased in step (not invalidated): the survivors'
  // norms are the old values exactly, and cosine scoring stays correct.
  const std::vector<float>& after = clf.class_norms();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0], norms[0]);
  EXPECT_EQ(after[1], norms[2]);
  EXPECT_EQ(after[2], norms[3]);
  for (std::size_t i = 0; i < p.test.size(); ++i) {
    if (p.test_labels[i] == 0) {
      EXPECT_EQ(clf.predict(p.test[i]), 0);
      break;
    }
  }
}

TEST_F(Online, BadArgsRejectedWithoutPublishing) {
  const ToyProblem p = make_toy(512, 3, 8, 0.2, 41);
  VersionedBank bank(trained_toy_bank(p));
  MassConfig mass;

  // Size mismatch, label out of range, wrong dim, bad remove index: all
  // typed rejections, no version published.
  EXPECT_EQ(bank.mass_epoch({}, {}, mass), UpdateStatus::kBadArgs);
  std::vector<std::int64_t> bad_labels = p.train_labels;
  bad_labels[0] = 99;
  EXPECT_EQ(bank.mass_epoch(p.train, bad_labels, mass), UpdateStatus::kBadArgs);
  util::Rng rng(7);
  EXPECT_EQ(bank.apply_update(Hypervector::random(64, rng), {1.0f, 0.0f, 0.0f}, 0.1f),
            UpdateStatus::kBadArgs);
  EXPECT_EQ(bank.apply_update(p.train[0], {1.0f, 0.0f}, 0.1f),
            UpdateStatus::kBadArgs);
  EXPECT_EQ(bank.remove_class(3), UpdateStatus::kBadArgs);
  EXPECT_EQ(bank.remove_class(-1), UpdateStatus::kBadArgs);
  EXPECT_EQ(bank.add_class({}), UpdateStatus::kBadArgs);
  EXPECT_EQ(bank.version(), 0u);
}

TEST_F(Online, UpdateNanRollsBackToPublishedVersion) {
  const ToyProblem p = make_toy(512, 3, 10, 0.2, 43);
  VersionedBank bank(trained_toy_bank(p));
  const VersionedBank::Snapshot before = bank.snapshot();

  util::fault::arm("online.update_nan");
  MassConfig mass;
  EXPECT_EQ(bank.mass_epoch(p.train, p.train_labels, mass),
            UpdateStatus::kNonFinite);
  EXPECT_GE(util::fault::hits("online.update_nan"), 1u);

  // Rollback: same version, bitwise-identical bank, still finite, still
  // scoring.
  EXPECT_EQ(bank.version(), 0u);
  const VersionedBank::Snapshot after = bank.snapshot();
  EXPECT_TRUE(banks_bitwise_equal(before->bank, after->bank));
  EXPECT_TRUE(after->bank.bank_finite());
  EXPECT_GT(after->bank.evaluate(p.test, p.test_labels), 0.9);

  // The next (clean) update publishes normally.
  util::fault::disarm_all();
  EXPECT_EQ(bank.mass_epoch(p.train, p.train_labels, mass), UpdateStatus::kOk);
  EXPECT_EQ(bank.version(), 1u);
}

TEST_F(Online, AccuracyGuardRollsBackCollapsingUpdate) {
  const ToyProblem p = make_toy(1024, 4, 15, 0.2, 47);
  VersionedBank bank(trained_toy_bank(p));
  UpdateGuard guard;
  guard.holdout = p.test;
  guard.holdout_labels = p.test_labels;
  guard.max_accuracy_drop = 0.10;
  bank.set_guard(guard);

  // A benign update passes the gate.
  MassConfig mass;
  ASSERT_EQ(bank.mass_epoch(p.train, p.train_labels, mass), UpdateStatus::kOk);
  EXPECT_EQ(bank.version(), 1u);

  // A poisoned chunk — labels rotated, huge learning rate — collapses
  // holdout accuracy and must roll back.
  std::vector<std::int64_t> rotated = p.train_labels;
  for (std::int64_t& label : rotated) label = (label + 1) % p.classes;
  MassConfig poison;
  poison.learning_rate = 10.0f;
  EXPECT_EQ(bank.mass_epoch(p.train, rotated, poison),
            UpdateStatus::kAccuracyCollapse);
  EXPECT_EQ(bank.version(), 1u);
  EXPECT_GT(bank.snapshot()->bank.evaluate(p.test, p.test_labels), 0.9);
}

TEST_F(Online, PublishCrashLeavesPreviousVersionLive) {
  const ToyProblem p = make_toy(512, 3, 10, 0.2, 53);
  VersionedBank bank(trained_toy_bank(p));
  const std::vector<float> before = bank_bits(bank.snapshot()->bank);

  util::fault::arm("online.publish_crash");
  MassConfig mass;
  EXPECT_EQ(bank.mass_epoch(p.train, p.train_labels, mass),
            UpdateStatus::kPublishFault);
  EXPECT_GE(util::fault::hits("online.publish_crash"), 1u);
  EXPECT_EQ(bank.version(), 0u);
  EXPECT_EQ(bank_bits(bank.snapshot()->bank), before);

  util::fault::disarm_all();
  EXPECT_EQ(bank.mass_epoch(p.train, p.train_labels, mass), UpdateStatus::kOk);
  EXPECT_EQ(bank.version(), 1u);
}

// --- kill-resume from NSHDKPT1 snapshots ---

/// Deterministic per-step toy chunk: the resume property needs chunks that
/// depend only on (seed, step), mirroring data::DriftStream.
std::vector<Hypervector> toy_chunk(std::int64_t dim, std::int64_t step,
                                   std::vector<std::int64_t>* labels) {
  util::Rng rng(900 + static_cast<std::uint64_t>(step));
  std::vector<Hypervector> chunk;
  for (std::int64_t i = 0; i < 12; ++i) {
    chunk.push_back(Hypervector::random(dim, rng));
    labels->push_back(i % 3);
  }
  return chunk;
}

TEST_F(Online, KillResumeFromSnapshotIsBitwise) {
  const ToyProblem p = make_toy(512, 3, 10, 0.2, 59);
  const HdClassifier seed_bank = trained_toy_bank(p);
  MassConfig mass;
  mass.learning_rate = 0.05f;

  // Full stream: steps 0..9, snapshot committed after step 4.
  VersionedBank full(seed_bank);
  const std::string snap = path("stream.nshdkpt");
  for (std::int64_t step = 0; step < 10; ++step) {
    std::vector<std::int64_t> labels;
    const std::vector<Hypervector> chunk = toy_chunk(512, step, &labels);
    ASSERT_EQ(full.mass_epoch(chunk, labels, mass), UpdateStatus::kOk);
    if (step == 4) {
      ASSERT_TRUE(full.save_snapshot(snap, "stream", /*cursor=*/step + 1));
    }
  }

  // Killed stream: a fresh bank restores the snapshot and replays from the
  // stored cursor.  Bitwise-identical end state, version counter included.
  VersionedBank resumed(seed_bank);
  const VersionedBank::RestoreResult restore =
      resumed.load_snapshot(snap, "stream");
  ASSERT_EQ(restore.status, util::LoadStatus::kOk);
  EXPECT_EQ(restore.version, 5u);
  EXPECT_EQ(restore.cursor, 5u);
  for (std::int64_t step = static_cast<std::int64_t>(restore.cursor); step < 10;
       ++step) {
    std::vector<std::int64_t> labels;
    const std::vector<Hypervector> chunk = toy_chunk(512, step, &labels);
    ASSERT_EQ(resumed.mass_epoch(chunk, labels, mass), UpdateStatus::kOk);
  }
  EXPECT_EQ(resumed.version(), full.version());
  EXPECT_TRUE(banks_bitwise_equal(resumed.snapshot()->bank,
                                  full.snapshot()->bank));
}

TEST_F(Online, CorruptSnapshotRestoreLeavesLiveBank) {
  const ToyProblem p = make_toy(512, 3, 10, 0.2, 61);
  VersionedBank bank(trained_toy_bank(p));
  const std::string snap = path("bank.nshdkpt");
  ASSERT_TRUE(bank.save_snapshot(snap, "bank", 3));

  MassConfig mass;
  ASSERT_EQ(bank.mass_epoch(p.train, p.train_labels, mass), UpdateStatus::kOk);
  const std::vector<float> live = bank_bits(bank.snapshot()->bank);

  // In-memory corruption of the restored payload: typed kNonFinite, live
  // bank untouched.
  util::fault::arm("online.snapshot_corrupt");
  EXPECT_EQ(bank.load_snapshot(snap, "bank").status, util::LoadStatus::kNonFinite);
  EXPECT_GE(util::fault::hits("online.snapshot_corrupt"), 1u);
  EXPECT_EQ(bank.version(), 1u);
  EXPECT_EQ(bank_bits(bank.snapshot()->bank), live);

  // Wrong identity key is a typed mismatch, same containment.
  util::fault::disarm_all();
  EXPECT_EQ(bank.load_snapshot(snap, "other").status,
            util::LoadStatus::kShapeMismatch);
  EXPECT_EQ(bank.version(), 1u);

  // Clean restore works and rewinds to the snapshot.
  const VersionedBank::RestoreResult restore = bank.load_snapshot(snap, "bank");
  ASSERT_EQ(restore.status, util::LoadStatus::kOk);
  EXPECT_EQ(restore.version, 0u);
  EXPECT_EQ(restore.cursor, 3u);
  EXPECT_EQ(bank.version(), 0u);
}

// --- the TSan property test: concurrent readers vs a mutating writer ---

TEST_F(Online, ConcurrentReadersObserveOnlyPublishedVersions) {
  const std::int64_t dim = 256;
  const ToyProblem p = make_toy(dim, 4, 8, 0.25, 71);
  VersionedBank bank(trained_toy_bank(p, /*epochs=*/2));

  // The writer records every version it publishes (version 0 included);
  // readers sample what they observe; the post-join check is that every
  // observation matches a recorded publication bitwise.
  std::map<std::uint64_t, std::vector<float>> published;
  published[0] = bank_bits(bank.snapshot()->bank);

  struct Observation {
    std::uint64_t version;
    std::vector<float> bits;
    std::vector<float> norms;
  };
  constexpr int kReaders = 4;
  std::vector<std::vector<Observation>> observations(kReaders);
  std::atomic<bool> stop{false};
  std::atomic<int> monotonicity_violations{0};
  std::atomic<int> torn_reads{0};
  std::atomic<int> recorded[kReaders] = {};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_version = 0;
      int iteration = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const VersionedBank::Snapshot snap = bank.snapshot();
        if (snap->version < last_version)
          monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
        last_version = snap->version;

        // Hammer the read path: batched similarities twice off the same
        // snapshot must be bitwise identical (immutable epoch, warm norms).
        const tensor::Tensor a =
            snap->bank.similarities_all(p.test, Similarity::kCosine);
        const tensor::Tensor b =
            snap->bank.similarities_all(p.test, Similarity::kCosine);
        if (std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0)
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        (void)snap->bank.predict_all(p.test, Similarity::kCosine);

        if (iteration++ % 4 == 0) {
          Observation obs;
          obs.version = snap->version;
          obs.bits = bank_bits(snap->bank);
          obs.norms = snap->bank.class_norms();
          observations[static_cast<std::size_t>(r)].push_back(std::move(obs));
          recorded[r].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer: weight updates interleaved with class growth and retirement.
  // Base labels stay in [0, 4), so mass_epoch stays valid while classes
  // beyond 4 come and go.
  MassConfig mass;
  mass.learning_rate = 0.02f;
  std::vector<Hypervector> shots(p.train.begin(), p.train.begin() + 4);
  for (int i = 0; i < 24; ++i) {
    UpdateStatus status;
    if (i % 7 == 3) {
      status = bank.add_class(shots);
    } else if (i % 7 == 6 && bank.num_classes() > 4) {
      status = bank.remove_class(bank.num_classes() - 1);
    } else {
      status = bank.mass_epoch(p.train, p.train_labels, mass);
    }
    ASSERT_EQ(status, UpdateStatus::kOk);
    const VersionedBank::Snapshot snap = bank.snapshot();
    published[snap->version] = bank_bits(snap->bank);
  }
  // Under machine load the writer can finish before the readers are even
  // scheduled; keep the readers running until each has recorded a few
  // observations so the post-join property has something to check.
  const auto record_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int r = 0; r < kReaders; ++r) {
    while (recorded[r].load(std::memory_order_relaxed) < 2 &&
           std::chrono::steady_clock::now() < record_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(monotonicity_violations.load(), 0);
  EXPECT_EQ(torn_reads.load(), 0);

  // Every observation is exactly one published version: bitwise bank match
  // and norms consistent with that bank (no mixed old-bank/new-norms
  // states).
  std::size_t checked = 0;
  for (const auto& reader_observations : observations) {
    for (const Observation& obs : reader_observations) {
      const auto it = published.find(obs.version);
      ASSERT_NE(it, published.end())
          << "reader observed unpublished version " << obs.version;
      ASSERT_EQ(obs.bits, it->second)
          << "torn bank at version " << obs.version;
      const std::int64_t classes =
          static_cast<std::int64_t>(obs.norms.size());
      ASSERT_EQ(static_cast<std::size_t>(classes) * dim, obs.bits.size());
      for (std::int64_t c = 0; c < classes; ++c) {
        double sq = 0.0;
        for (std::int64_t d = 0; d < dim; ++d) {
          const double v = obs.bits[static_cast<std::size_t>(c * dim + d)];
          sq += v * v;
        }
        const double expect = std::sqrt(sq);
        ASSERT_NEAR(obs.norms[static_cast<std::size_t>(c)], expect,
                    1e-3 * std::max(1.0, expect))
            << "norms inconsistent with bank at version " << obs.version;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

// --- drift streams ---

TEST_F(Online, DriftStreamChunksAreDeterministic) {
  data::DriftStreamConfig config;
  config.base.num_classes = 4;
  config.base.samples_per_class = 4;
  config.mode = data::DriftMode::kShift;
  config.steps = 6;
  config.chunk_size = 16;
  const data::DriftStream a(config);
  const data::DriftStream b(config);
  for (std::int64_t step = 0; step < config.steps; step += 2) {
    const data::DriftChunk ca = a.chunk(step);
    const data::DriftChunk cb = b.chunk(step);
    ASSERT_EQ(ca.data.size(), 16);
    ASSERT_EQ(ca.data.labels, cb.data.labels);
    ASSERT_EQ(ca.clean_labels, cb.clean_labels);
    ASSERT_EQ(std::memcmp(ca.data.images.data(), cb.data.images.data(),
                          static_cast<std::size_t>(ca.data.images.numel()) *
                              sizeof(float)),
              0)
        << "chunk " << step << " not bitwise deterministic";
  }
  // Chunks at different steps differ (the stream actually moves).
  const data::DriftChunk first = a.chunk(0);
  const data::DriftChunk last = a.chunk(config.steps - 1);
  EXPECT_NE(std::memcmp(first.data.images.data(), last.data.images.data(),
                        static_cast<std::size_t>(first.data.images.numel()) *
                            sizeof(float)),
            0);
  EXPECT_FLOAT_EQ(last.drift01, 1.0f);
}

TEST_F(Online, DriftStreamLabelNoiseRampsAndNovelClassesAppear) {
  data::DriftStreamConfig noise;
  noise.base.num_classes = 4;
  noise.mode = data::DriftMode::kLabelNoise;
  noise.steps = 8;
  noise.chunk_size = 64;
  noise.label_noise_start = 0.0f;
  noise.label_noise_end = 0.6f;
  const data::DriftStream noisy(noise);
  const data::DriftChunk clean = noisy.chunk(0);
  EXPECT_EQ(clean.data.labels, clean.clean_labels);
  const data::DriftChunk dirty = noisy.chunk(7);
  EXPECT_FLOAT_EQ(dirty.label_noise, 0.6f);
  std::int64_t flipped = 0;
  for (std::size_t i = 0; i < dirty.clean_labels.size(); ++i)
    if (dirty.data.labels[i] != dirty.clean_labels[i]) ++flipped;
  // ~60% of 64 labels; loose bounds keep this deterministic-but-robust.
  EXPECT_GT(flipped, 20);
  EXPECT_LT(flipped, 60);

  data::DriftStreamConfig novel;
  novel.base.num_classes = 4;
  novel.mode = data::DriftMode::kNovelClass;
  novel.steps = 6;
  novel.chunk_size = 48;
  novel.novel_classes = 2;
  novel.novel_class_at = 3;
  const data::DriftStream growing(novel);
  EXPECT_EQ(growing.total_classes(), 6);
  const data::DriftChunk before = growing.chunk(2);
  EXPECT_EQ(before.data.num_classes, 4);
  for (const std::int64_t label : before.data.labels) EXPECT_LT(label, 4);
  const data::DriftChunk after = growing.chunk(3);
  EXPECT_EQ(after.data.num_classes, 6);
  std::int64_t novel_samples = 0;
  for (const std::int64_t label : after.data.labels)
    if (label >= 4) ++novel_samples;
  EXPECT_GT(novel_samples, 0);
}

// --- serve::Engine online-update submission path ---

using serve::Engine;
using serve::EngineConfig;
using serve::ModelBundle;
using serve::RequestStatus;
using serve::Response;
using serve::SubmitStatus;

constexpr std::int64_t kClasses = 4;
constexpr std::size_t kCut = 4;

data::Dataset tiny_dataset(std::int64_t per_class = 8, std::uint64_t seed = 42) {
  data::SynthCifarConfig config;
  config.num_classes = kClasses;
  config.samples_per_class = per_class;
  config.seed = seed;
  return data::make_synth_cifar(config);
}

std::unique_ptr<ModelBundle> make_online_bundle(std::int64_t max_batch) {
  core::NshdConfig nshd_config;
  nshd_config.dim = 512;
  nshd_config.manifold_features = 32;
  nshd_config.epochs = 2;
  nshd_config.use_kd = false;
  nshd_config.train_manifold = false;
  auto bundle = std::make_unique<ModelBundle>(
      models::make_model("mobilenetv2s", kClasses, /*seed=*/7), kCut,
      nshd_config, max_batch);
  const data::Dataset train = tiny_dataset();
  const core::ExtractedFeatures features =
      core::extract_features(bundle->plan, train, max_batch);
  bundle->nshd.train(features, train.labels, /*teacher_logits=*/nullptr);
  bundle->enable_online();
  return bundle;
}

/// Symbolizes a dataset through the bundle's encoder using a private
/// extraction plan (the bundle's own plan may be busy serving traffic).
std::vector<Hypervector> symbolize_dataset(ModelBundle& bundle,
                                           const data::Dataset& ds) {
  const core::ExtractedFeatures features =
      core::extract_features(bundle.zoo, kCut, ds, 16);
  return bundle.nshd.symbolize_all(features);
}

TEST_F(Online, EngineServesAcrossOnlineUpdatesAndClassGrowth) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 8;
  config.batch_deadline_ms = 0.5;
  Engine engine(config);
  auto bundle = make_online_bundle(config.max_batch);
  ModelBundle& model = *bundle;
  engine.register_model("m", std::move(bundle));

  const data::Dataset traffic = tiny_dataset(/*per_class=*/6, /*seed=*/77);

  // Stream setup: novel class 4 appears immediately; old classes keep
  // flowing.
  data::DriftStreamConfig stream_config;
  stream_config.base.num_classes = kClasses;
  stream_config.mode = data::DriftMode::kNovelClass;
  stream_config.steps = 2;
  stream_config.chunk_size = 32;
  stream_config.novel_classes = 1;
  stream_config.novel_class_at = 0;
  const data::DriftStream stream(stream_config);

  // Symbolize the learning chunk before traffic starts (the extraction
  // borrows the bundle's zoo weights).
  const data::DriftChunk chunk = stream.chunk(0);
  const std::vector<Hypervector> queries = symbolize_dataset(model, chunk.data);

  // Concurrent traffic while the updates run.
  std::atomic<bool> stop{false};
  std::vector<std::future<Response>> futures;
  std::mutex futures_mutex;
  std::thread submitter([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::future<Response> future;
      if (engine.submit("m", traffic.sample(i % traffic.size()), &future) ==
          SubmitStatus::kOk) {
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(future));
      }
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // The learning stream: grow the bank by the novel class, then run MASS
  // chunks over the full label space.
  std::vector<Hypervector> novel_shots;
  std::vector<Hypervector> known;
  std::vector<std::int64_t> known_labels;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (chunk.data.labels[i] >= kClasses) {
      novel_shots.push_back(queries[i]);
    } else {
      known.push_back(queries[i]);
      known_labels.push_back(chunk.data.labels[i]);
    }
  }
  ASSERT_FALSE(novel_shots.empty());

  std::int64_t new_class = -1;
  ASSERT_EQ(engine.add_class_online("m", novel_shots, &new_class),
            serve::UpdateStatus::kOk);
  EXPECT_EQ(new_class, kClasses);
  MassConfig mass;
  mass.learning_rate = 0.02f;
  ASSERT_EQ(engine.update_online("m", known, known_labels, mass),
            serve::UpdateStatus::kOk);
  ASSERT_EQ(engine.update_online("m", known, known_labels, mass),
            serve::UpdateStatus::kOk);
  EXPECT_EQ(model.online->num_classes(), kClasses + 1);
  EXPECT_EQ(model.online->version(), 3u);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  submitter.join();
  engine.shutdown();

  // Every accepted request resolved typed; responses are finite and carry
  // either the old (4) or grown (5) class count, never a torn in-between.
  std::uint64_t ok = 0;
  for (std::future<Response>& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    const Response response = future.get();
    if (response.status != RequestStatus::kOk) continue;
    ++ok;
    ASSERT_TRUE(response.scores.size() == static_cast<std::size_t>(kClasses) ||
                response.scores.size() == static_cast<std::size_t>(kClasses + 1))
        << "response carries " << response.scores.size() << " scores";
    for (const float score : response.scores) ASSERT_TRUE(std::isfinite(score));
  }
  EXPECT_GT(ok, 0u);

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.updates_ok, 3u);  // add_class + two mass chunks
  EXPECT_EQ(stats.classes_added, 1u);
  EXPECT_EQ(stats.updates_rolled_back, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.timed_out +
                                 stats.internal_errors);
}

TEST_F(Online, EnginePoisonedUpdateNeverCorruptsServing) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 0.5;
  Engine engine(config);
  auto bundle = make_online_bundle(config.max_batch);
  ModelBundle& model = *bundle;
  engine.register_model("m", std::move(bundle));

  const data::Dataset traffic = tiny_dataset(/*per_class=*/4, /*seed=*/88);
  const std::vector<Hypervector> queries = symbolize_dataset(model, traffic);
  const std::vector<float> before = bank_bits(model.online->snapshot()->bank);

  // Poisoned weight update: typed rollback, counted, serving bank
  // bitwise-unchanged.
  util::fault::arm("online.update_nan");
  MassConfig mass;
  EXPECT_EQ(engine.update_online("m", queries, traffic.labels, mass),
            serve::UpdateStatus::kNonFinite);
  util::fault::disarm_all();

  // Publish-step crash: same containment, distinct typed status.
  util::fault::arm("online.publish_crash");
  EXPECT_EQ(engine.update_online("m", queries, traffic.labels, mass),
            serve::UpdateStatus::kPublishFault);
  util::fault::disarm_all();

  EXPECT_EQ(model.online->version(), 0u);
  EXPECT_EQ(bank_bits(model.online->snapshot()->bank), before);
  const serve::EngineStats mid = engine.stats();
  EXPECT_EQ(mid.updates_rolled_back, 2u);
  EXPECT_EQ(mid.updates_ok, 0u);

  // Traffic after the rollbacks serves healthy.
  std::vector<std::future<Response>> futures;
  for (std::int64_t i = 0; i < traffic.size(); ++i) {
    std::future<Response> future;
    ASSERT_EQ(engine.submit("m", traffic.sample(i), &future), SubmitStatus::kOk);
    futures.push_back(std::move(future));
  }
  engine.shutdown();
  for (std::future<Response>& future : futures) {
    const Response response = future.get();
    ASSERT_EQ(response.status, RequestStatus::kOk);
    for (const float score : response.scores) ASSERT_TRUE(std::isfinite(score));
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.timed_out +
                                 stats.internal_errors);
}

TEST_F(Online, EngineSnapshotRestoreRoundTrip) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  Engine engine(config);
  auto bundle = make_online_bundle(config.max_batch);
  ModelBundle& model = *bundle;
  engine.register_model("m", std::move(bundle));

  const data::Dataset chunk = tiny_dataset(/*per_class=*/4, /*seed=*/99);
  const std::vector<Hypervector> queries = symbolize_dataset(model, chunk);
  MassConfig mass;
  mass.learning_rate = 0.02f;

  // Update, snapshot (cursor 7), then keep learning.
  ASSERT_EQ(engine.update_online("m", queries, chunk.labels, mass),
            serve::UpdateStatus::kOk);
  const std::string snap = path("engine.nshdkpt");
  ASSERT_TRUE(engine.save_online_snapshot("m", snap, /*cursor=*/7));
  const std::vector<float> at_snapshot = bank_bits(model.online->snapshot()->bank);
  ASSERT_EQ(engine.update_online("m", queries, chunk.labels, mass),
            serve::UpdateStatus::kOk);
  ASSERT_EQ(engine.update_online("m", queries, chunk.labels, mass),
            serve::UpdateStatus::kOk);
  EXPECT_NE(bank_bits(model.online->snapshot()->bank), at_snapshot);

  // Restore rewinds the serving bank to the snapshot, bitwise.
  const hd::VersionedBank::RestoreResult restore =
      engine.restore_online("m", snap);
  ASSERT_EQ(restore.status, util::LoadStatus::kOk);
  EXPECT_EQ(restore.version, 1u);
  EXPECT_EQ(restore.cursor, 7u);
  EXPECT_EQ(model.online->version(), 1u);
  EXPECT_EQ(bank_bits(model.online->snapshot()->bank), at_snapshot);

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.online_snapshots, 1u);
  EXPECT_EQ(stats.online_restores, 1u);

  // Unknown model / online-disabled paths are typed, not crashes.
  EXPECT_FALSE(engine.save_online_snapshot("nope", snap));
  EXPECT_EQ(engine.restore_online("nope", snap).status,
            util::LoadStatus::kNotFound);
  EXPECT_EQ(engine.update_online("nope", queries, chunk.labels, mass),
            serve::UpdateStatus::kUnknownModel);
  engine.shutdown();
}

}  // namespace
}  // namespace nshd
