// Corruption matrix for the NSHDKPT1 checkpoint format: every truncation
// point, single-bit flips over the whole file, version bumps, legacy blobs,
// concurrent writers, and the env/test-armed fault injection sites.  The
// invariant under test is "zero silent wrong loads": any damaged file must
// come back with a typed non-ok status, never decoded garbage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "util/cache.hpp"
#include "util/checkpoint.hpp"
#include "util/fault.hpp"

namespace nshd::util {
namespace {

Checkpoint make_checkpoint() {
  Checkpoint cp;
  cp.key = "pretrained|test-model|k=3";
  cp.meta = "train|epochs_done=2;lr_scale=0x1p-1";
  CheckpointTensor a;
  a.dims = {2, 3};
  a.values = {1.0f, -2.5f, 0.0f, 4.25f, 1e-7f, -3e8f};
  CheckpointTensor b;
  b.dims = {4};
  b.values = {0.5f, 0.25f, -0.125f, 9.0f};
  cp.tensors = {a, b};
  return cp;
}

class CheckpointFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nshd_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm_all();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  std::filesystem::path dir_;
};

TEST(Crc32, KnownAnswer) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(Crc32, SeedChainsIncrementally) {
  const char* text = "123456789";
  const std::uint32_t whole = crc32(text, 9);
  const std::uint32_t split = crc32(text + 4, 5, crc32(text, 4));
  EXPECT_EQ(split, whole);
}

TEST(CheckpointCodec, RoundTripPreservesEverything) {
  const Checkpoint cp = make_checkpoint();
  const std::vector<std::uint8_t> bytes = encode_checkpoint(cp);
  const CheckpointLoad load = decode_checkpoint(bytes.data(), bytes.size());
  ASSERT_EQ(load.status, LoadStatus::kOk);
  EXPECT_EQ(load.checkpoint.key, cp.key);
  EXPECT_EQ(load.checkpoint.meta, cp.meta);
  ASSERT_EQ(load.checkpoint.tensors.size(), cp.tensors.size());
  for (std::size_t i = 0; i < cp.tensors.size(); ++i) {
    EXPECT_EQ(load.checkpoint.tensors[i].dims, cp.tensors[i].dims);
    EXPECT_EQ(load.checkpoint.tensors[i].values, cp.tensors[i].values);
  }
}

TEST(CheckpointCodec, EmptyCheckpointRoundTrips) {
  const Checkpoint cp;  // no key, no meta, no tensors
  const std::vector<std::uint8_t> bytes = encode_checkpoint(cp);
  const CheckpointLoad load = decode_checkpoint(bytes.data(), bytes.size());
  ASSERT_EQ(load.status, LoadStatus::kOk);
  EXPECT_TRUE(load.checkpoint.tensors.empty());
}

TEST(CheckpointCodec, LegacyBlobIsAMiss) {
  // A headerless float blob (the pre-checkpoint cache format) must read as
  // kNotFound so callers treat it as a cache miss, not an error.
  const std::vector<float> legacy = {0.5f, 1.5f, -2.0f, 3.25f};
  const CheckpointLoad load = decode_checkpoint(
      reinterpret_cast<const std::uint8_t*>(legacy.data()),
      legacy.size() * sizeof(float));
  EXPECT_EQ(load.status, LoadStatus::kNotFound);
}

TEST(CheckpointCodec, TruncationAtEveryLengthIsTyped) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(make_checkpoint());
  // Every strict prefix — which covers every section boundary — must decode
  // as kTruncated: the magic-prefix rule classifies short headers, and the
  // trailing commit marker catches everything after.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const CheckpointLoad load = decode_checkpoint(bytes.data(), len);
    EXPECT_EQ(load.status, LoadStatus::kTruncated) << "prefix length " << len;
  }
}

TEST(CheckpointCodec, EveryBitFlipIsDetectedAndTyped) {
  const std::vector<std::uint8_t> pristine = encode_checkpoint(make_checkpoint());
  ASSERT_EQ(decode_checkpoint(pristine.data(), pristine.size()).status,
            LoadStatus::kOk);
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = pristine;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const CheckpointLoad load = decode_checkpoint(bytes.data(), bytes.size());
      LoadStatus expected;
      if (byte < 8) {
        expected = LoadStatus::kNotFound;  // magic no longer matches
      } else if (byte < 12) {
        expected = LoadStatus::kVersionMismatch;  // version word
      } else if (byte >= bytes.size() - 8) {
        expected = LoadStatus::kTruncated;  // commit marker destroyed
      } else {
        expected = LoadStatus::kBadChecksum;  // a CRC catches it
      }
      EXPECT_EQ(load.status, expected) << "byte " << byte << " bit " << bit;
      EXPECT_NE(load.status, LoadStatus::kOk) << "silent wrong load!";
    }
  }
}

TEST(CheckpointCodec, FutureVersionIsVersionMismatch) {
  std::vector<std::uint8_t> bytes = encode_checkpoint(make_checkpoint());
  std::uint32_t version = 2;
  std::memcpy(bytes.data() + 8, &version, sizeof version);
  // The version gates interpretation before any CRC: a future format may
  // relocate the checksums themselves.
  EXPECT_EQ(decode_checkpoint(bytes.data(), bytes.size()).status,
            LoadStatus::kVersionMismatch);
}

TEST(CheckpointCodec, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(LoadStatus::kOk), "ok");
  EXPECT_STREQ(to_string(LoadStatus::kNotFound), "not_found");
  EXPECT_STREQ(to_string(LoadStatus::kTruncated), "truncated");
  EXPECT_STREQ(to_string(LoadStatus::kBadChecksum), "bad_checksum");
  EXPECT_STREQ(to_string(LoadStatus::kVersionMismatch), "version_mismatch");
  EXPECT_STREQ(to_string(LoadStatus::kShapeMismatch), "shape_mismatch");
}

TEST_F(CheckpointFiles, FileRoundTrip) {
  const Checkpoint cp = make_checkpoint();
  ASSERT_TRUE(write_checkpoint_file(path("a.ckpt"), cp));
  const CheckpointLoad load = read_checkpoint_file(path("a.ckpt"));
  ASSERT_EQ(load.status, LoadStatus::kOk);
  EXPECT_EQ(load.checkpoint.key, cp.key);
  ASSERT_EQ(load.checkpoint.tensors.size(), 2u);
  EXPECT_EQ(load.checkpoint.tensors[0].values, cp.tensors[0].values);
}

TEST_F(CheckpointFiles, MissingFileIsNotFound) {
  EXPECT_EQ(read_checkpoint_file(path("nope.ckpt")).status, LoadStatus::kNotFound);
}

TEST_F(CheckpointFiles, LegacyFileOnDiskIsNotFound) {
  const std::vector<float> legacy(16, 1.25f);
  std::ofstream out(path("legacy.ckpt"), std::ios::binary);
  out.write(reinterpret_cast<const char*>(legacy.data()),
            static_cast<std::streamsize>(legacy.size() * sizeof(float)));
  out.close();
  EXPECT_EQ(read_checkpoint_file(path("legacy.ckpt")).status,
            LoadStatus::kNotFound);
}

TEST_F(CheckpointFiles, WriteCreatesParentDirectories) {
  const std::string nested = path("deep/nested/dirs/b.ckpt");
  ASSERT_TRUE(write_checkpoint_file(nested, make_checkpoint()));
  EXPECT_EQ(read_checkpoint_file(nested).status, LoadStatus::kOk);
}

TEST_F(CheckpointFiles, ConcurrentWritersLeaveOneValidFile) {
  // Many writers race on the same final path; the unique-temp + atomic
  // rename protocol guarantees the surviving file is one writer's complete
  // checkpoint, never an interleaving.
  const std::string target = path("contended.ckpt");
  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 10;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int w = 0; w < kWritesPerThread; ++w) {
        Checkpoint cp = make_checkpoint();
        cp.meta = "writer=" + std::to_string(t);
        ASSERT_TRUE(write_checkpoint_file(target, cp));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  const CheckpointLoad load = read_checkpoint_file(target);
  ASSERT_EQ(load.status, LoadStatus::kOk);
  EXPECT_EQ(load.checkpoint.meta.rfind("writer=", 0), 0u);
  EXPECT_EQ(load.checkpoint.tensors.size(), 2u);
}

TEST_F(CheckpointFiles, TornWriteFaultReadsAsTruncated) {
  fault::arm("checkpoint.torn_write");
  ASSERT_TRUE(write_checkpoint_file(path("torn.ckpt"), make_checkpoint()));
  EXPECT_EQ(fault::hits("checkpoint.torn_write"), 1u);
  EXPECT_EQ(read_checkpoint_file(path("torn.ckpt")).status,
            LoadStatus::kTruncated);
  // The fault fired once; the rewrite must repair the file.
  ASSERT_TRUE(write_checkpoint_file(path("torn.ckpt"), make_checkpoint()));
  EXPECT_EQ(read_checkpoint_file(path("torn.ckpt")).status, LoadStatus::kOk);
}

TEST_F(CheckpointFiles, BitFlipFaultReadsAsBadChecksum) {
  fault::arm("checkpoint.bit_flip");
  ASSERT_TRUE(write_checkpoint_file(path("flip.ckpt"), make_checkpoint()));
  EXPECT_EQ(read_checkpoint_file(path("flip.ckpt")).status,
            LoadStatus::kBadChecksum);
}

TEST_F(CheckpointFiles, ShortReadFaultReadsAsTruncated) {
  ASSERT_TRUE(write_checkpoint_file(path("short.ckpt"), make_checkpoint()));
  fault::arm("checkpoint.short_read");
  EXPECT_EQ(read_checkpoint_file(path("short.ckpt")).status,
            LoadStatus::kTruncated);
  // Next read is clean again (nth=1 trigger already consumed).
  EXPECT_EQ(read_checkpoint_file(path("short.ckpt")).status, LoadStatus::kOk);
}

TEST(Fault, NthTriggerCountsHits) {
  fault::disarm_all();
  fault::arm("test.site", 2);
  EXPECT_FALSE(fault::should_fire("test.site"));  // hit 1
  EXPECT_TRUE(fault::should_fire("test.site"));   // hit 2 fires
  EXPECT_FALSE(fault::should_fire("test.site"));  // hit 3
  EXPECT_EQ(fault::hits("test.site"), 3u);
  EXPECT_FALSE(fault::should_fire("unarmed.site"));
  EXPECT_EQ(fault::hits("unarmed.site"), 0u);
  fault::disarm_all();
  EXPECT_FALSE(fault::should_fire("test.site"));
}

TEST_F(CheckpointFiles, DiskCacheCheckpointRoundTrip) {
  DiskCache cache(path("cache"));
  Checkpoint cp = make_checkpoint();
  ASSERT_TRUE(cache.put_checkpoint("some|key", cp));
  const CheckpointLoad load = cache.get_checkpoint("some|key");
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load.checkpoint.key, "some|key");  // key is forced on put
  EXPECT_EQ(load.checkpoint.tensors.size(), 2u);
  EXPECT_FALSE(cache.get_checkpoint("other|key").ok());
  EXPECT_EQ(cache.get_checkpoint("other|key").status, LoadStatus::kNotFound);

  cache.erase_checkpoint("some|key");
  EXPECT_EQ(cache.get_checkpoint("some|key").status, LoadStatus::kNotFound);
}

TEST_F(CheckpointFiles, DiskCacheRejectsForeignKeyFile) {
  // Simulate an fnv1a64 collision: the file for key A sits at key B's path.
  // The embedded-key check must turn this into a miss, not A's tensors.
  DiskCache cache(path("cache"));
  ASSERT_TRUE(cache.put_checkpoint("key-a", make_checkpoint()));
  char name_a[32], name_b[32];
  std::snprintf(name_a, sizeof name_a, "%016llx.ckpt",
                static_cast<unsigned long long>(fnv1a64("key-a")));
  std::snprintf(name_b, sizeof name_b, "%016llx.ckpt",
                static_cast<unsigned long long>(fnv1a64("key-b")));
  std::filesystem::copy_file(path("cache") + "/" + name_a,
                             path("cache") + "/" + name_b);
  EXPECT_EQ(cache.get_checkpoint("key-b").status, LoadStatus::kNotFound);
  EXPECT_TRUE(cache.get_checkpoint("key-a").ok());
}

TEST_F(CheckpointFiles, DiskCacheSurfacesCorruptionStatus) {
  DiskCache cache(path("cache"));
  ASSERT_TRUE(cache.put_checkpoint("the-key", make_checkpoint()));
  // Flip a payload bit in the stored file.
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.ckpt",
                static_cast<unsigned long long>(fnv1a64("the-key")));
  const std::string file = path("cache") + "/" + name;
  std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(40);
  char byte = 0;
  io.seekg(40);
  io.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x04);
  io.seekp(40);
  io.write(&byte, 1);
  io.close();
  const CheckpointLoad load = cache.get_checkpoint("the-key");
  EXPECT_FALSE(load.ok());
  EXPECT_NE(load.status, LoadStatus::kNotFound);  // named corruption, not a miss
}

}  // namespace
}  // namespace nshd::util
