// Integration tests for core::ExperimentContext — the shared harness the
// benches and examples run on.  Uses a deliberately tiny configuration so
// the whole pipeline (dataset synthesis, teacher pretraining, feature
// caching, NSHD training, VanillaHD) executes in seconds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/experiment.hpp"

namespace nshd::core {
namespace {

/// Tiny, fast experiment configuration sharing one cache directory.
class ExperimentFixture : public ::testing::Test {
 protected:
  static ExperimentConfig tiny_config() {
    ExperimentConfig config;
    config.dataset.num_classes = 3;
    config.dataset.samples_per_class = 40;
    config.dataset.noise_stddev = 0.25f;
    config.dataset.jitter_fraction = 0.12f;
    config.dataset.distractor_strength = 0.35f;
    config.test_samples_per_class = 10;
    config.teacher.epochs = 15;
    config.teacher.batch_size = 20;
    config.teacher.target_train_accuracy = 0.97f;
    return config;
  }

  static void SetUpTestSuite() {
    dir_ = std::filesystem::temp_directory_path() /
           ("nshd_experiment_test_" + std::to_string(::getpid()));
    ::setenv("NSHD_CACHE_DIR", dir_.c_str(), 1);
    context_ = new ExperimentContext(tiny_config());
  }
  static void TearDownTestSuite() {
    delete context_;
    context_ = nullptr;
    ::unsetenv("NSHD_CACHE_DIR");
    std::filesystem::remove_all(dir_);
  }

  static ExperimentContext& context() { return *context_; }

 private:
  static ExperimentContext* context_;
  static std::filesystem::path dir_;
};

ExperimentContext* ExperimentFixture::context_ = nullptr;
std::filesystem::path ExperimentFixture::dir_;

TEST_F(ExperimentFixture, DatasetsMatchConfig) {
  EXPECT_EQ(context().train().size(), 120);
  EXPECT_EQ(context().test().size(), 30);
  EXPECT_EQ(context().num_classes(), 3);
}

TEST_F(ExperimentFixture, TeacherLearnsAndIsCached) {
  const double acc = context().cnn_test_accuracy("mobilenetv2s");
  EXPECT_GT(acc, 0.5);  // far above the 1/3 chance level
  // Second access is memoized (identical value, no retraining).
  EXPECT_EQ(context().cnn_test_accuracy("mobilenetv2s"), acc);
}

TEST_F(ExperimentFixture, TeacherLogitsShape) {
  const tensor::Tensor& logits = context().teacher_train_logits("mobilenetv2s");
  EXPECT_EQ(logits.shape(), tensor::Shape({120, 3}));
}

TEST_F(ExperimentFixture, FeaturesAreMemoized) {
  const ExtractedFeatures& a = context().train_features("mobilenetv2s", 14);
  const ExtractedFeatures& b = context().train_features("mobilenetv2s", 14);
  EXPECT_EQ(&a, &b);  // same object, not a recomputation
  EXPECT_EQ(a.values.shape()[0], 120);
  EXPECT_EQ(a.chw.numel(), a.values.shape()[1]);
}

TEST_F(ExperimentFixture, DistinctCutsAreDistinctEntries) {
  const ExtractedFeatures& a = context().train_features("mobilenetv2s", 14);
  const ExtractedFeatures& b = context().train_features("mobilenetv2s", 17);
  EXPECT_NE(&a, &b);
  EXPECT_NE(a.values.shape()[1], b.values.shape()[1]);
}

TEST_F(ExperimentFixture, RunNshdBeatsChance) {
  NshdConfig config;
  config.dim = 1000;
  config.epochs = 10;
  const auto run = context().run_nshd("mobilenetv2s", 14, config);
  EXPECT_GT(run.test_accuracy, 0.5);
  EXPECT_GT(run.final_train_accuracy, 0.6);
  EXPECT_GT(run.train_seconds, 0.0);
}

TEST_F(ExperimentFixture, BaselineHdRuns) {
  const auto run = context().run_nshd("mobilenetv2s", 14, baseline_hd_config(1000));
  EXPECT_GT(run.test_accuracy, 0.5);
}

TEST_F(ExperimentFixture, VanillaHdRunsEndToEnd) {
  // On this deliberately easy 3-class fixture raw-pixel HD can be strong;
  // the paper's VanillaHD << NSHD ordering is asserted at full scale by
  // bench_fig7_accuracy, not here.  This test covers the code path only.
  const double vanilla = context().vanilla_hd_accuracy(1000, /*mass_epochs=*/5);
  EXPECT_GT(vanilla, 1.0 / 3.0 * 0.8);  // not degenerate
  EXPECT_LE(vanilla, 1.0);
}

TEST_F(ExperimentFixture, FailedRunNshdMarksRowAndSweepContinues) {
  NshdConfig config;
  config.dim = 500;
  // A cut index far beyond the layer stack throws inside run_nshd; the row
  // comes back marked failed instead of taking down the whole sweep.
  const auto bad = context().run_nshd("mobilenetv2s", 9999, config);
  EXPECT_TRUE(bad.failed);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_EQ(bad.test_accuracy, 0.0);
  // The context is still healthy: the next (valid) cell runs normally.
  config.dim = 1000;
  config.epochs = 5;
  const auto good = context().run_nshd("mobilenetv2s", 14, config);
  EXPECT_FALSE(good.failed);
  EXPECT_GT(good.test_accuracy, 0.4);
}

TEST(ExperimentConfig, StandardScalesWithClassCount) {
  const ExperimentConfig ten = ExperimentConfig::standard(10);
  const ExperimentConfig hundred = ExperimentConfig::standard(100);
  EXPECT_EQ(ten.dataset.num_classes, 10);
  EXPECT_EQ(hundred.dataset.num_classes, 100);
  // The 100-class task uses fewer samples per class to stay tractable.
  EXPECT_LT(hundred.dataset.samples_per_class, ten.dataset.samples_per_class);
}

}  // namespace
}  // namespace nshd::core
