// Tests for the INT8 inference path: widening dot/gemm_s8 differentials
// against integer references (odd shapes, saturation edges), quantization
// primitives (round trip, per-channel weights, u8 im2row vs f32 im2col),
// calibration observers and their typed fault sites ("quant.calib_nan",
// "quant.scale_zero"), QuantizedInferencePlan semantics (thread-count
// invariance, calibration determinism, counted f32 fallbacks, oversized
// batches), and the serving engine's quantized_batches counter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <limits>
#include <vector>

#include "core/feature_extractor.hpp"
#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/plan.hpp"
#include "nn/quant_plan.hpp"
#include "serve/engine.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/quant.hpp"
#include "tensor/simd.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;
using tensor::quant::CalibStatus;
using tensor::quant::QuantParams;

std::vector<std::uint8_t> random_u8(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  return v;
}

std::vector<std::int8_t> random_s8(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v)
    x = static_cast<std::int8_t>(static_cast<int>(rng.next_u64() % 255) - 127);
  return v;
}

std::int32_t ref_dot(const std::uint8_t* a, const std::int8_t* b, std::int64_t n) {
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i)
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  return static_cast<std::int32_t>(acc);
}

// --- Widening dot kernel ---

TEST(QuantKernels, DotU8S8MatchesIntegerReferenceAtOddLengths) {
  for (std::int64_t n : {0, 1, 3, 15, 16, 17, 31, 32, 33, 63, 64, 100, 257, 1000}) {
    const std::vector<std::uint8_t> a = random_u8(n, 11 + static_cast<std::uint64_t>(n));
    const std::vector<std::int8_t> b = random_s8(n, 29 + static_cast<std::uint64_t>(n));
    EXPECT_EQ(tensor::simd::dot_u8s8(a.data(), b.data(), n), ref_dot(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(QuantKernels, DotU8S8SaturationEdges) {
  // The full-scale corner: 255 * (+/-127) per lane.  A true maddubs-style
  // kernel saturates the s16 pair sum here (255*127*2 = 64770 > 32767); the
  // widening kernel must stay exact.
  for (std::int64_t n : {1, 2, 16, 17, 33, 1024}) {
    std::vector<std::uint8_t> a(static_cast<std::size_t>(n), 255);
    std::vector<std::int8_t> pos(static_cast<std::size_t>(n), 127);
    std::vector<std::int8_t> neg(static_cast<std::size_t>(n), -127);
    EXPECT_EQ(tensor::simd::dot_u8s8(a.data(), pos.data(), n),
              static_cast<std::int32_t>(n * 255 * 127)) << "n=" << n;
    EXPECT_EQ(tensor::simd::dot_u8s8(a.data(), neg.data(), n),
              static_cast<std::int32_t>(-n * 255 * 127)) << "n=" << n;
    // Alternating max-magnitude pairs: exercises both madd lanes.
    std::vector<std::int8_t> alt(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) alt[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 127 : -127;
    EXPECT_EQ(tensor::simd::dot_u8s8(a.data(), alt.data(), n),
              ref_dot(a.data(), alt.data(), n)) << "n=" << n;
  }
}

// --- gemm_s8 ---

TEST(QuantKernels, GemmS8MatchesIntegerReferenceAtOddShapes) {
  struct Case { std::int64_t m, k, n; };
  // m not a multiple of the 4-row tile, k with a scalar tail, n == 1.
  for (const Case& c : {Case{1, 1, 1}, Case{3, 7, 2}, Case{4, 16, 4},
                        Case{5, 33, 3}, Case{7, 64, 9}, Case{13, 100, 1},
                        Case{16, 257, 5}}) {
    const std::vector<std::int8_t> a = random_s8(c.m * c.k, 5);
    const std::vector<std::uint8_t> b = random_u8(c.n * c.k, 17);
    std::vector<std::int32_t> out(static_cast<std::size_t>(c.m * c.n), -1);
    tensor::gemm_s8(a.data(), b.data(), out.data(), c.m, c.k, c.n);
    for (std::int64_t i = 0; i < c.m; ++i) {
      for (std::int64_t j = 0; j < c.n; ++j) {
        EXPECT_EQ(out[static_cast<std::size_t>(i * c.n + j)],
                  ref_dot(b.data() + j * c.k, a.data() + i * c.k, c.k))
            << "m=" << c.m << " k=" << c.k << " n=" << c.n << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(QuantKernels, GemmS8ThreadCountInvariant) {
  const std::int64_t m = 37, k = 129, n = 8;
  const std::vector<std::int8_t> a = random_s8(m * k, 3);
  const std::vector<std::uint8_t> b = random_u8(n * k, 9);
  std::vector<std::int32_t> serial(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> parallel(static_cast<std::size_t>(m * n));
  util::set_thread_count(1);
  tensor::gemm_s8(a.data(), b.data(), serial.data(), m, k, n);
  util::set_thread_count(4);
  tensor::gemm_s8(a.data(), b.data(), parallel.data(), m, k, n);
  util::set_thread_count(1);
  EXPECT_EQ(serial, parallel);
}

// --- Quantization primitives ---

TEST(QuantPrimitives, WeightQuantizationPerChannel) {
  // Row 0: amax 2.0 -> scale 2/127; row 1: all zero -> scale 1.0.
  const float w[] = {2.0f, -1.0f, 0.5f, 0.0f, 0.0f, 0.0f};
  const tensor::quant::QuantizedWeights q =
      tensor::quant::quantize_weights_per_channel(w, 2, 3);
  EXPECT_EQ(q.rows, 2);
  EXPECT_EQ(q.cols, 3);
  EXPECT_FLOAT_EQ(q.scales[0], 2.0f / 127.0f);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -64);  // lround(-1 * 127 / 2) = -64 (half away from zero)
  EXPECT_EQ(q.data[2], 32);   // lround(0.5 * 127 / 2)
  EXPECT_EQ(q.row_sums[0], 127 - 64 + 32);
  EXPECT_FLOAT_EQ(q.scales[1], 1.0f);
  EXPECT_EQ(q.data[3], 0);
  EXPECT_EQ(q.row_sums[1], 0);
}

TEST(QuantPrimitives, ActivationRoundTripBoundedByHalfScale) {
  util::Rng rng(77);
  std::vector<float> x(1000);
  for (auto& v : x) v = rng.next_float() * 6.0f - 2.0f;  // [-2, 4]
  const tensor::quant::Range range = tensor::quant::batch_range(x.data(), 1000);
  QuantParams qp;
  ASSERT_EQ(tensor::quant::activation_params(range, &qp), CalibStatus::kOk);
  EXPECT_GT(qp.scale, 0.0f);
  // Zero is exactly representable (the range is widened to include it).
  EXPECT_FLOAT_EQ(tensor::quant::dequantize_value(
                      static_cast<std::uint8_t>(qp.zero_point), qp), 0.0f);
  std::vector<std::uint8_t> q(1000);
  std::vector<float> back(1000);
  tensor::quant::quantize_u8(x.data(), q.data(), 1000, qp);
  tensor::quant::dequantize_u8(q.data(), back.data(), 1000, qp);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(std::fabs(back[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(i)]),
              0.5f * qp.scale + 1e-6f) << "i=" << i;
  }
}

TEST(QuantPrimitives, Im2RowMatchesIm2colTranspose) {
  // Quantize an image, lower it with im2row_u8, and check every tap against
  // the f32 im2col of the same image: dequantize(row value) must equal the
  // quantized-then-dequantized pixel, with padding taps exactly zero.
  tensor::ConvGeometry g;
  g.channels = 3;
  g.in_h = 5;
  g.in_w = 4;
  g.kernel_h = g.kernel_w = 3;
  g.stride = 2;
  g.pad = 1;
  const std::int64_t numel = g.channels * g.in_h * g.in_w;
  util::Rng rng(123);
  std::vector<float> image(static_cast<std::size_t>(numel));
  for (auto& v : image) v = rng.next_float() * 2.0f - 1.0f;
  QuantParams qp;
  ASSERT_EQ(tensor::quant::activation_params(
                tensor::quant::batch_range(image.data(), numel), &qp),
            CalibStatus::kOk);
  std::vector<std::uint8_t> qimg(static_cast<std::size_t>(numel));
  tensor::quant::quantize_u8(image.data(), qimg.data(), numel, qp);

  const std::int64_t rows = g.col_rows(), cols = g.col_cols();
  std::vector<std::uint8_t> lowered(static_cast<std::size_t>(rows * cols));
  tensor::quant::im2row_u8(qimg.data(), g,
                           static_cast<std::uint8_t>(qp.zero_point), lowered.data());
  std::vector<float> col(static_cast<std::size_t>(rows * cols));
  tensor::im2col(image.data(), g, col.data());
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      // im2row is [cols, rows] — the transpose of im2col's [rows, cols].
      const float deq = tensor::quant::dequantize_value(
          lowered[static_cast<std::size_t>(c * rows + r)], qp);
      const float ref = col[static_cast<std::size_t>(r * cols + c)];
      if (ref == 0.0f) {
        // Padding or a zero pixel: both quantize to a value within half a
        // scale step of zero; padding taps are exactly zp.
        EXPECT_LE(std::fabs(deq), 0.5f * qp.scale + 1e-6f);
      } else {
        EXPECT_LE(std::fabs(deq - ref), 0.5f * qp.scale + 1e-6f);
      }
    }
  }
}

TEST(QuantPrimitives, ObserversAreDeterministic) {
  util::Rng rng(9);
  std::vector<float> batch1(64), batch2(64);
  for (auto& v : batch1) v = rng.next_float() * 4.0f - 2.0f;
  for (auto& v : batch2) v = rng.next_float() * 2.0f - 0.5f;
  tensor::quant::MinMaxObserver mm1, mm2;
  tensor::quant::MovingAverageObserver ema1(0.25f), ema2(0.25f);
  for (auto* o : {&mm1, &mm2}) {
    o->observe(batch1.data(), 64);
    o->observe(batch2.data(), 64);
  }
  for (auto* o : {&ema1, &ema2}) {
    o->observe(batch1.data(), 64);
    o->observe(batch2.data(), 64);
  }
  EXPECT_EQ(mm1.range().lo, mm2.range().lo);
  EXPECT_EQ(mm1.range().hi, mm2.range().hi);
  EXPECT_EQ(ema1.range().lo, ema2.range().lo);
  EXPECT_EQ(ema1.range().hi, ema2.range().hi);
  // The EMA range sits inside the absolute min/max envelope.
  EXPECT_GE(ema1.range().lo, mm1.range().lo - 1e-6f);
  EXPECT_LE(ema1.range().hi, mm1.range().hi + 1e-6f);
}

// --- Calibration fault sites ---

TEST(QuantFault, CalibNanSiteForcesTypedStatus) {
  util::fault::disarm_all();
  util::Rng rng(5);
  std::vector<float> x(32);
  for (auto& v : x) v = rng.next_float();
  const tensor::quant::Range range = tensor::quant::batch_range(x.data(), 32);
  QuantParams qp;
  ASSERT_EQ(tensor::quant::activation_params(range, &qp), CalibStatus::kOk);
  util::fault::arm("quant.calib_nan");
  EXPECT_EQ(tensor::quant::activation_params(range, &qp), CalibStatus::kCalibNan);
  EXPECT_GE(util::fault::hits("quant.calib_nan"), 1u);
  util::fault::disarm_all();
}

TEST(QuantFault, ScaleZeroSiteForcesTypedStatus) {
  util::fault::disarm_all();
  std::vector<float> x(32, 1.5f);
  const tensor::quant::Range range = tensor::quant::batch_range(x.data(), 32);
  QuantParams qp;
  ASSERT_EQ(tensor::quant::activation_params(range, &qp), CalibStatus::kOk);
  util::fault::arm("quant.scale_zero");
  EXPECT_EQ(tensor::quant::activation_params(range, &qp), CalibStatus::kScaleZero);
  EXPECT_GE(util::fault::hits("quant.scale_zero"), 1u);
  util::fault::disarm_all();
}

TEST(QuantFault, NonFiniteRangeIsCalibNanWithoutInjection) {
  std::vector<float> x = {1.0f, std::numeric_limits<float>::quiet_NaN(), 2.0f};
  QuantParams qp;
  EXPECT_EQ(tensor::quant::activation_params(tensor::quant::batch_range(x.data(), 3), &qp),
            CalibStatus::kCalibNan);
  // Empty range (nothing observed) is also kCalibNan.
  EXPECT_EQ(tensor::quant::activation_params(tensor::quant::Range{}, &qp),
            CalibStatus::kCalibNan);
}

// --- QuantizedInferencePlan ---

data::Dataset small_dataset(std::int64_t num_classes, std::int64_t per_class,
                            std::uint64_t seed = 42) {
  data::SynthCifarConfig config;
  config.num_classes = num_classes;
  config.samples_per_class = per_class;
  config.seed = seed;
  return data::make_synth_cifar(config);
}

TEST(QuantPlan, UncalibratedRunThrows) {
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/3);
  nn::QuantizedInferencePlan plan(m.net, m.input_chw, /*last_layer=*/2, 4);
  EXPECT_FALSE(plan.calibrated());
  const data::Dataset ds = small_dataset(4, 2);
  Tensor out(plan.output_shape(4));
  const TensorView in(ds.images.view().data(), Shape{4, 3, 32, 32});
  EXPECT_THROW(plan.run_batch(in, out.view()), std::logic_error);
}

TEST(QuantPlan, VggCutIsFullyInt8AndCloseToF32) {
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/3);
  const data::Dataset ds = small_dataset(4, 8);  // 32 samples
  const std::size_t cut = 4;  // conv/relu/conv/relu/maxpool
  nn::QuantizedInferencePlan qplan(m.net, m.input_chw, cut, /*max_batch=*/8);
  const nn::CalibrationReport& report = qplan.calibrate(ds.images.view(), 8);
  EXPECT_TRUE(report.calibrated);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.int8_layers, 0);
  EXPECT_EQ(report.fallback_layers, 0);  // vgg16s prefix is fully int8-capable

  nn::InferencePlan fplan(m.net, m.input_chw, cut, 8);
  const TensorView in(ds.images.view().data(), Shape{8, 3, 32, 32});
  Tensor qout(qplan.output_shape(8));
  Tensor fout(fplan.output_shape(8));
  qplan.run_batch(in, qout.view());
  fplan.run_batch(in, fout.view());
  // 8-bit activations + weights after two convs: small relative error.
  double err = 0.0, ref = 0.0;
  for (std::int64_t i = 0; i < qout.numel(); ++i) {
    err += static_cast<double>(qout[i] - fout[i]) * (qout[i] - fout[i]);
    ref += static_cast<double>(fout[i]) * fout[i];
  }
  ASSERT_GT(ref, 0.0);
  EXPECT_LT(std::sqrt(err / ref), 0.1)
      << "relative L2 error " << std::sqrt(err / ref);
}

TEST(QuantPlan, OutputBitwiseInvariantAcrossThreadCounts) {
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/7);
  const data::Dataset ds = small_dataset(4, 8);
  const std::size_t cut = 6;
  nn::QuantizedInferencePlan plan(m.net, m.input_chw, cut, /*max_batch=*/8);
  plan.calibrate(ds.images.view(), 8);
  const TensorView in(ds.images.view().data(), Shape{8, 3, 32, 32});
  Tensor serial(plan.output_shape(8));
  Tensor threaded(plan.output_shape(8));
  util::set_thread_count(1);
  plan.run_batch(in, serial.view());
  util::set_thread_count(4);
  plan.run_batch(in, threaded.view());
  util::set_thread_count(1);
  ASSERT_EQ(serial.numel(), threaded.numel());
  EXPECT_EQ(std::memcmp(serial.data(), threaded.data(),
                        static_cast<std::size_t>(serial.numel()) * sizeof(float)),
            0);
}

TEST(QuantPlan, CalibrationIsDeterministic) {
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/5);
  const data::Dataset ds = small_dataset(4, 6);
  const std::size_t cut = 4;
  const TensorView in(ds.images.view().data(), Shape{6, 3, 32, 32});

  auto run_once = [&](nn::QuantizedInferencePlan& plan) {
    plan.calibrate(ds.images.view(), 8);
    Tensor out(plan.output_shape(6));
    plan.run_batch(in, out.view());
    return out;
  };
  nn::QuantizedInferencePlan p1(m.net, m.input_chw, cut, 8);
  nn::QuantizedInferencePlan p2(m.net, m.input_chw, cut, 8);
  const Tensor a = run_once(p1);
  const Tensor b = run_once(p2);
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)), 0);
  // Re-calibrating the same plan on the same images reproduces the output.
  const Tensor c = run_once(p1);
  EXPECT_EQ(std::memcmp(a.data(), c.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)), 0);
}

TEST(QuantPlan, BlockModelFallsBackToF32Bitwise) {
  // mobilenetv2s's top level is residual blocks — nothing is int8-capable,
  // so the quantized plan must reproduce the f32 plan bit for bit and
  // report every layer as a (policy, not calibration) fallback.
  models::ZooModel m = models::make_model("mobilenetv2s", 4, /*seed=*/3);
  const data::Dataset ds = small_dataset(4, 4);
  const std::size_t cut = 4;
  nn::QuantizedInferencePlan qplan(m.net, m.input_chw, cut, 8);
  const nn::CalibrationReport& report = qplan.calibrate(ds.images.view(), 8);
  EXPECT_EQ(report.int8_layers, 0);
  EXPECT_GT(report.fallback_layers, 0);
  EXPECT_EQ(report.calibration_fallbacks, 0);

  nn::InferencePlan fplan(m.net, m.input_chw, cut, 8);
  const TensorView in(ds.images.view().data(), Shape{8, 3, 32, 32});
  Tensor qout(qplan.output_shape(8));
  Tensor fout(fplan.output_shape(8));
  qplan.run_batch(in, qout.view());
  fplan.run_batch(in, fout.view());
  EXPECT_EQ(std::memcmp(qout.data(), fout.data(),
                        static_cast<std::size_t>(qout.numel()) * sizeof(float)),
            0);
}

TEST(QuantPlan, CalibrationFaultForcesCountedF32Fallback) {
  // Arm quant.scale_zero on every hit: every boundary calibration fails, so
  // every int8-capable layer must demote to f32 WITH the counter — the
  // no-silent-fallback contract — and the plan must still run, now matching
  // the f32 plan bitwise.
  util::fault::disarm_all();
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/3);
  const data::Dataset ds = small_dataset(4, 4);
  const std::size_t cut = 4;
  nn::QuantizedInferencePlan qplan(m.net, m.input_chw, cut, 8);
  util::fault::arm_every("quant.scale_zero");
  const nn::CalibrationReport report = qplan.calibrate(ds.images.view(), 8);
  util::fault::disarm_all();
  EXPECT_TRUE(report.calibrated);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.int8_layers, 0);
  EXPECT_GT(report.calibration_fallbacks, 0);
  bool saw_status = false;
  for (const CalibStatus s : report.boundary_status)
    if (s == CalibStatus::kScaleZero) saw_status = true;
  EXPECT_TRUE(saw_status);

  nn::InferencePlan fplan(m.net, m.input_chw, cut, 8);
  const TensorView in(ds.images.view().data(), Shape{8, 3, 32, 32});
  Tensor qout(qplan.output_shape(8));
  Tensor fout(fplan.output_shape(8));
  qplan.run_batch(in, qout.view());
  fplan.run_batch(in, fout.view());
  EXPECT_EQ(std::memcmp(qout.data(), fout.data(),
                        static_cast<std::size_t>(qout.numel()) * sizeof(float)),
            0);

  // quant.calib_nan drives the same demotion through the other status.
  util::fault::arm_every("quant.calib_nan");
  const nn::CalibrationReport nan_report = qplan.calibrate(ds.images.view(), 8);
  util::fault::disarm_all();
  EXPECT_EQ(nan_report.int8_layers, 0);
  EXPECT_GT(nan_report.calibration_fallbacks, 0);
}

TEST(QuantPlan, OversizedBatchRunsAsBurst) {
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/3);
  const data::Dataset ds = small_dataset(4, 8);
  nn::QuantizedInferencePlan plan(m.net, m.input_chw, 4, /*max_batch=*/4);
  plan.calibrate(ds.images.view(), 4);
  // Batch 8 > max_batch 4: served by a throwaway burst workspace, and the
  // rows must equal two planned batches of 4.
  const TensorView all = ds.images.view();
  Tensor burst(plan.output_shape(8));
  plan.run_batch(TensorView(all.data(), Shape{8, 3, 32, 32}), burst.view());
  Tensor halves(plan.output_shape(8));
  const std::int64_t f = plan.out_features();
  for (int h = 0; h < 2; ++h) {
    TensorView rows(halves.data() + h * 4 * f, plan.output_shape(4));
    plan.run_batch(TensorView(all.data() + h * 4 * 3 * 32 * 32, Shape{4, 3, 32, 32}), rows);
  }
  EXPECT_EQ(std::memcmp(burst.data(), halves.data(),
                        static_cast<std::size_t>(burst.numel()) * sizeof(float)),
            0);
}

TEST(QuantPlan, ExtractFeaturesMatchesDirectRuns) {
  models::ZooModel m = models::make_model("vgg16s", 4, /*seed=*/9);
  const data::Dataset ds = small_dataset(4, 5);  // 20 samples, odd vs batch 8
  nn::QuantizedInferencePlan plan(m.net, m.input_chw, 4, 8);
  plan.calibrate(ds.images.view(), 8);
  const core::ExtractedFeatures feats = core::extract_features(plan, ds, 8);
  EXPECT_EQ(feats.values.shape()[0], ds.size());
  EXPECT_EQ(feats.values.shape()[1], plan.out_features());
  Tensor direct(plan.output_shape(ds.size()));
  plan.run_batch(ds.images.view(), direct.view());
  EXPECT_EQ(std::memcmp(feats.values.data(), direct.data(),
                        static_cast<std::size_t>(direct.numel()) * sizeof(float)),
            0);
}

// --- HD classifier int8 scoring ---

TEST(QuantClassifier, EvaluateQuantizedMatchesPackedPredictions) {
  util::Rng rng(31);
  const std::int64_t dim = 500, classes = 6, samples = 40;
  hd::HdClassifier classifier(classes, dim);
  std::vector<hd::Hypervector> train;
  std::vector<std::int64_t> labels;
  std::vector<float> row(static_cast<std::size_t>(dim));
  for (std::int64_t i = 0; i < samples; ++i) {
    for (auto& v : row) v = rng.next_float() * 2.0f - 1.0f;
    train.push_back(hd::Hypervector::from_sign(row.data(), dim));
    labels.push_back(i % classes);
  }
  classifier.bundle_init(train, labels);
  // The gemm_s8-based evaluate must agree with the packed popcount
  // single-sample path on every prediction.
  const std::vector<hd::Hypervector> qclasses = classifier.quantized_classes();
  std::int64_t agree = 0;
  for (std::int64_t i = 0; i < samples; ++i) {
    const std::int64_t packed = hd::HdClassifier::predict_quantized(
        qclasses, train[static_cast<std::size_t>(i)]);
    if (packed == labels[static_cast<std::size_t>(i)]) ++agree;
  }
  const double packed_acc = static_cast<double>(agree) / static_cast<double>(samples);
  EXPECT_DOUBLE_EQ(classifier.evaluate_quantized(train, labels), packed_acc);
}

// --- Serving integration ---

TEST(QuantServe, QuantizedBatchesCounterAdvances) {
  const std::int64_t kClasses = 4;
  const std::size_t kCut = 4;
  data::SynthCifarConfig dconfig;
  dconfig.num_classes = kClasses;
  dconfig.samples_per_class = 8;
  const data::Dataset train = data::make_synth_cifar(dconfig);

  core::NshdConfig nconfig;
  nconfig.dim = 512;
  nconfig.manifold_features = 32;
  nconfig.epochs = 2;
  nconfig.use_kd = false;
  nconfig.train_manifold = false;

  serve::EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  auto bundle = std::make_unique<serve::ModelBundle>(
      models::make_model("vgg16s", kClasses, 7), kCut, nconfig, config.max_batch);
  const core::ExtractedFeatures features =
      core::extract_features(bundle->plan, train, config.max_batch);
  bundle->nshd.train(features, train.labels, nullptr);
  const nn::CalibrationReport& report =
      bundle->enable_quantized(train.images.view(), config.max_batch);
  ASSERT_TRUE(report.calibrated);
  EXPECT_GT(report.int8_layers, 0);

  serve::Engine engine(config);
  engine.register_model("m", std::move(bundle));
  std::vector<std::future<serve::Response>> futures(4);
  const std::int64_t s = train.sample_shape().numel();
  for (int i = 0; i < 4; ++i) {
    Tensor image(Shape{1, 3, 32, 32});
    std::memcpy(image.data(), train.images.data() + i * s,
                static_cast<std::size_t>(s) * sizeof(float));
    ASSERT_EQ(engine.submit("m", std::move(image), &futures[static_cast<std::size_t>(i)]),
              serve::SubmitStatus::kOk);
  }
  for (auto& f : futures) {
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_GE(stats.quantized_batches, 1u);
  EXPECT_EQ(stats.quantized_batches, stats.batches);
  engine.shutdown();
}

}  // namespace
}  // namespace nshd
