// Tests for src/tensor: shapes, tensor container, GEMM kernels, im2col, ops.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd::tensor {
namespace {

TEST(Shape, NumelAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Shape, EmptyShapeIsScalar) {
  Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, ConvOutDim) {
  EXPECT_EQ(conv_out_dim(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_dim(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_dim(32, 2, 2, 0), 16);
  EXPECT_EQ(conv_out_dim(7, 3, 2, 1), 4);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  for (float v : t.span()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{5}, 2.5f);
  for (float v : t.span()) EXPECT_EQ(v, 2.5f);
  t.fill(-1.0f);
  for (float v : t.span()) EXPECT_EQ(v, -1.0f);
}

TEST(Tensor, At2DMatchesFlat) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, At4DMatchesFlat) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapedSharesValues) {
  Tensor t(Shape{2, 6});
  t.at(1, 1) = 3.0f;
  Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.at(1, 3), 3.0f);
  EXPECT_EQ(r.numel(), t.numel());
}

TEST(Tensor, ViewSharesStorage) {
  Tensor t(Shape{2, 3});
  TensorView v = t.view();
  EXPECT_EQ(v.data(), t.data());
  EXPECT_EQ(v.shape(), t.shape());
  v[4] = 6.0f;
  EXPECT_EQ(t.at(1, 1), 6.0f);

  const Tensor& ct = t;
  TensorView cv = ct.view();
  EXPECT_EQ(cv.data(), ct.data());
}

TEST(Tensor, FromViewCopiesValues) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor copy = Tensor::from_view(t.view());
  EXPECT_EQ(copy.shape(), t.shape());
  EXPECT_NE(copy.data(), t.data());
  copy[0] = 99.0f;  // deep copy: the source is untouched
  EXPECT_EQ(t[0], 0.0f);
  for (std::int64_t i = 1; i < t.numel(); ++i) EXPECT_EQ(copy[i], t[i]);
}

TEST(Tensor, FromViewReshapedSlice) {
  // A view may reinterpret a sub-span with a different shape; from_view must
  // honor the view's shape, not the owning tensor's.
  Tensor t(Shape{4, 4});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  TensorView row2(t.data() + 8, Shape{2, 2, 2});
  Tensor copy = Tensor::from_view(row2);
  EXPECT_EQ(copy.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(copy[0], 8.0f);
  EXPECT_EQ(copy[7], 15.0f);
}

TEST(Tensor, FromEmptyView) {
  Tensor zero(Shape{0, 5});
  Tensor copy = Tensor::from_view(zero.view());
  EXPECT_EQ(copy.numel(), 0);
  EXPECT_EQ(copy.shape(), (Shape{0, 5}));
  EXPECT_TRUE(copy.empty());
}

// --- GEMM kernels against a naive reference ---

void naive_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) sum += a.at(i, p) * b.at(p, j);
      c.at(i, j) = sum;
    }
}

Tensor random_tensor(Shape shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = rng.normal();
  return t;
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 100 + k * 10 + n);
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor expect(Shape{m, n}), got(Shape{m, n});
  naive_gemm(a, b, expect);
  gemm(a.data(), b.data(), got.data(), m, k, n);
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-3f) << "at " << i;
}

TEST_P(GemmSizes, TransposedBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(1000 + m);
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor bt = random_tensor(Shape{n, k}, rng);
  // Reference: b = bt^T.
  Tensor b(Shape{k, n});
  for (std::int64_t i = 0; i < k; ++i)
    for (std::int64_t j = 0; j < n; ++j) b.at(i, j) = bt.at(j, i);
  Tensor expect(Shape{m, n}), got(Shape{m, n});
  naive_gemm(a, b, expect);
  gemm_bt(a.data(), bt.data(), got.data(), m, k, n);
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-3f);
}

TEST_P(GemmSizes, TransposedAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(2000 + m);
  const Tensor at = random_tensor(Shape{k, m}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor a(Shape{m, k});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < k; ++j) a.at(i, j) = at.at(j, i);
  Tensor expect(Shape{m, n}), got(Shape{m, n});
  naive_gemm(a, b, expect);
  gemm_at(at.data(), b.data(), got.data(), m, k, n);
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{3, 5, 2},
                                           std::tuple{8, 8, 8},
                                           std::tuple{17, 31, 13},
                                           std::tuple{64, 70, 65},
                                           std::tuple{5, 300, 7}));

TEST(Gemm, BitwiseIdenticalAcrossThreadCounts) {
  // The pool's fixed chunking must make every GEMM variant produce the
  // same floats whether it runs serial or on 8 threads.
  util::Rng rng(77);
  const std::int64_t m = 83, k = 57, n = 41;
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  const Tensor bt = random_tensor(Shape{n, k}, rng);
  const Tensor at = random_tensor(Shape{k, m}, rng);
  auto run_all = [&] {
    std::vector<Tensor> out(3, Tensor(Shape{m, n}));
    gemm(a.data(), b.data(), out[0].data(), m, k, n);
    gemm_bt(a.data(), bt.data(), out[1].data(), m, k, n);
    gemm_at(at.data(), b.data(), out[2].data(), m, k, n);
    return out;
  };
  util::set_thread_count(1);
  const std::vector<Tensor> serial = run_all();
  util::set_thread_count(8);
  const std::vector<Tensor> threaded = run_all();
  util::set_thread_count(1);
  for (int v = 0; v < 3; ++v) {
    for (std::int64_t i = 0; i < serial[v].numel(); ++i)
      ASSERT_EQ(serial[static_cast<std::size_t>(v)][i],
                threaded[static_cast<std::size_t>(v)][i])
          << "variant " << v << " at " << i;
  }
}

TEST(Gemm, AccumulateAddsToExisting) {
  util::Rng rng(3);
  const Tensor a = random_tensor(Shape{4, 6}, rng);
  const Tensor b = random_tensor(Shape{6, 5}, rng);
  Tensor base(Shape{4, 5});
  base.fill(1.0f);
  Tensor plain(Shape{4, 5});
  gemm(a.data(), b.data(), plain.data(), 4, 6, 5);
  gemm(a.data(), b.data(), base.data(), 4, 6, 5, /*accumulate=*/true);
  for (std::int64_t i = 0; i < base.numel(); ++i)
    EXPECT_NEAR(base[i], plain[i] + 1.0f, 1e-4f);
}

TEST(Gemv, MatchesGemm) {
  util::Rng rng(4);
  const Tensor a = random_tensor(Shape{7, 9}, rng);
  const Tensor x = random_tensor(Shape{9, 1}, rng);
  Tensor expect(Shape{7, 1});
  naive_gemm(a, x, expect);
  Tensor got(Shape{7});
  gemv(a.data(), x.data(), got.data(), 7, 9);
  for (std::int64_t i = 0; i < 7; ++i) EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(GemvT, MatchesTransposedMultiply) {
  util::Rng rng(5);
  const Tensor a = random_tensor(Shape{7, 9}, rng);
  const Tensor x = random_tensor(Shape{7}, rng);
  Tensor got(Shape{9});
  gemv_t(a.data(), x.data(), got.data(), 7, 9);
  for (std::int64_t j = 0; j < 9; ++j) {
    float sum = 0.0f;
    for (std::int64_t i = 0; i < 7; ++i) sum += a.at(i, j) * x[i];
    EXPECT_NEAR(got[j], sum, 1e-4f);
  }
}

TEST(Dot, SimpleValues) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, -5, 6};
  EXPECT_FLOAT_EQ(dot(a, b, 3), 4 - 10 + 18);
}

// --- im2col / col2im ---

TEST(Im2col, IdentityKernelReproducesInput) {
  // 1x1 kernel, stride 1, no pad: col == image.
  util::Rng rng(6);
  const ConvGeometry g{.channels = 2, .in_h = 3, .in_w = 3, .kernel_h = 1,
                       .kernel_w = 1, .stride = 1, .pad = 0};
  Tensor img = random_tensor(Shape{2, 3, 3}, rng);
  Tensor col(Shape{g.col_rows(), g.col_cols()});
  im2col(img.data(), g, col.data());
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_EQ(col[i], img[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  const ConvGeometry g{.channels = 1, .in_h = 2, .in_w = 2, .kernel_h = 3,
                       .kernel_w = 3, .stride = 1, .pad = 1};
  Tensor img = Tensor::full(Shape{1, 2, 2}, 1.0f);
  Tensor col(Shape{g.col_rows(), g.col_cols()});
  im2col(img.data(), g, col.data());
  // Top-left output position, top-left kernel tap hits padding.
  EXPECT_EQ(col.at(0, 0), 0.0f);
  // Center taps hit real pixels.
  EXPECT_EQ(col.at(4, 0), 1.0f);
}

TEST(Im2col, KnownSmallCase) {
  // 1 channel 3x3 image, 2x2 kernel stride 1: 4 output positions.
  Tensor img(Shape{1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) img[i] = static_cast<float>(i);
  const ConvGeometry g{.channels = 1, .in_h = 3, .in_w = 3, .kernel_h = 2,
                       .kernel_w = 2, .stride = 1, .pad = 0};
  Tensor col(Shape{4, 4});
  im2col(img.data(), g, col.data());
  // Row 0 = kernel tap (0,0) over positions: pixels 0,1,3,4.
  EXPECT_EQ(col.at(0, 0), 0.0f);
  EXPECT_EQ(col.at(0, 1), 1.0f);
  EXPECT_EQ(col.at(0, 2), 3.0f);
  EXPECT_EQ(col.at(0, 3), 4.0f);
  // Row 3 = tap (1,1): pixels 4,5,7,8.
  EXPECT_EQ(col.at(3, 0), 4.0f);
  EXPECT_EQ(col.at(3, 3), 8.0f);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // the conv backward pass relies on.
  util::Rng rng(7);
  const ConvGeometry g{.channels = 3, .in_h = 5, .in_w = 4, .kernel_h = 3,
                       .kernel_w = 3, .stride = 2, .pad = 1};
  Tensor x = random_tensor(Shape{g.channels, g.in_h, g.in_w}, rng);
  Tensor y = random_tensor(Shape{g.col_rows(), g.col_cols()}, rng);
  Tensor col(Shape{g.col_rows(), g.col_cols()});
  im2col(x.data(), g, col.data());
  Tensor back(Shape{g.channels, g.in_h, g.in_w});
  col2im(y.data(), g, back.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < col.numel(); ++i) lhs += static_cast<double>(col[i]) * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

// --- ops ---

TEST(Ops, AddSubMul) {
  Tensor a(Shape{3}), b(Shape{3});
  a[0] = 1; a[1] = 2; a[2] = 3;
  b[0] = 4; b[1] = 5; b[2] = 6;
  const Tensor s = add(a, b);
  EXPECT_EQ(s[0], 5.0f);
  const Tensor d = sub(b, a);
  EXPECT_EQ(d[2], 3.0f);
  const Tensor p = mul(a, b);
  EXPECT_EQ(p[1], 10.0f);
}

TEST(Ops, AxpyInplace) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor b = Tensor::full(Shape{4}, 2.0f);
  axpy_inplace(a, 0.5f, b);
  for (float v : a.span()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Ops, SumMeanNorm) {
  Tensor a(Shape{4});
  a[0] = 3; a[1] = -4; a[2] = 0; a[3] = 1;
  EXPECT_DOUBLE_EQ(sum(a), 0.0);
  EXPECT_DOUBLE_EQ(mean(a), 0.0);
  EXPECT_NEAR(l2_norm(a), std::sqrt(9.0 + 16.0 + 1.0), 1e-6);
}

TEST(Ops, ArgmaxVariants) {
  Tensor a(Shape{2, 3});
  a.at(0, 1) = 5.0f;
  a.at(1, 2) = 7.0f;
  EXPECT_EQ(argmax(a), 5);
  EXPECT_EQ(argmax_row(a, 0), 1);
  EXPECT_EQ(argmax_row(a, 1), 2);
}

TEST(Ops, SoftmaxSumsToOne) {
  util::Rng rng(8);
  Tensor logits = random_tensor(Shape{4, 7}, rng);
  const Tensor p = softmax(logits);
  for (std::int64_t r = 0; r < 4; ++r) {
    double row = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      row += p.at(r, c);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  Tensor a(Shape{3});
  a[0] = 1; a[1] = 2; a[2] = 3;
  Tensor b(Shape{3});
  b[0] = 101; b[1] = 102; b[2] = 103;
  const Tensor pa = softmax(a), pb = softmax(b);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-6f);
}

TEST(Ops, SoftmaxTemperatureFlattens) {
  Tensor a(Shape{2});
  a[0] = 0; a[1] = 4;
  const Tensor sharp = softmax(a, 1.0f);
  const Tensor soft = softmax(a, 16.0f);
  EXPECT_GT(sharp[1] - sharp[0], soft[1] - soft[0]);
  EXPECT_NEAR(soft[0] + soft[1], 1.0f, 1e-6f);
}

TEST(Ops, TransposeRoundTrip) {
  util::Rng rng(9);
  const Tensor a = random_tensor(Shape{3, 5}, rng);
  const Tensor t = transpose(a);
  EXPECT_EQ(t.shape(), Shape({5, 3}));
  const Tensor back = transpose(t);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], back[i]);
}

TEST(Ops, MatmulMatchesGemm) {
  util::Rng rng(10);
  const Tensor a = random_tensor(Shape{4, 6}, rng);
  const Tensor b = random_tensor(Shape{6, 3}, rng);
  const Tensor c = matmul(a, b);
  Tensor expect(Shape{4, 3});
  naive_gemm(a, b, expect);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-4f);
}

}  // namespace
}  // namespace nshd::tensor
