// Property tests for the SIMD kernel layer (tensor/simd.hpp and its users):
// every vectorized kernel is compared against a naive serial reference —
// bitwise for packed/popcount paths, tolerance-bounded for float tiles —
// across odd shapes (n not a multiple of the vector width, tail words,
// m smaller than the tile height), plus thread-count-invariance checks for
// the kernels parallelized in this layer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "hd/projection.hpp"
#include "tensor/gemm.hpp"
#include "tensor/simd.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd {
namespace {

std::vector<float> random_vec(std::int64_t n, util::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

// Naive double-precision references: one scalar accumulator, canonical loop
// order.  Tolerances scale with sqrt(k) to cover f32 accumulation drift.
void ref_gemm(const float* a, const float* b, double* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        s += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = s;
    }
}

float tol_for(std::int64_t k) { return 1e-4f * std::sqrt(static_cast<float>(k)) + 1e-4f; }

struct GemmShape {
  std::int64_t m, k, n;
};

// Odd shapes on purpose: m below the 4-row tile, n off the vector width and
// off the panel width, k with scalar tails, plus a few square sizes.
const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {2, 3, 5},    {3, 5, 2},    {4, 8, 16},
    {5, 16, 8},  {7, 17, 9},   {6, 31, 1},   {16, 64, 32}, {17, 63, 33},
    {3, 129, 31}, {33, 100, 2}, {8, 300, 3},  {12, 256, 40}, {20, 41, 19},
};

TEST(SimdGemm, MatchesNaiveReferenceOddShapes) {
  util::Rng rng(11);
  for (const auto& s : kShapes) {
    const std::vector<float> a = random_vec(s.m * s.k, rng);
    const std::vector<float> b = random_vec(s.k * s.n, rng);
    std::vector<double> ref(static_cast<std::size_t>(s.m * s.n));
    ref_gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
    tensor::gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], ref[i], tol_for(s.k)) << "shape " << s.m << "x" << s.k
                                              << "x" << s.n << " at " << i;
  }
}

TEST(SimdGemm, AccumulatePreservesExistingC) {
  util::Rng rng(12);
  for (const auto& s : kShapes) {
    const std::vector<float> a = random_vec(s.m * s.k, rng);
    const std::vector<float> b = random_vec(s.k * s.n, rng);
    std::vector<float> c0 = random_vec(s.m * s.n, rng);
    std::vector<double> ref(static_cast<std::size_t>(s.m * s.n));
    ref_gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    std::vector<float> c = c0;
    tensor::gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n, /*accumulate=*/true);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], ref[i] + c0[i], tol_for(s.k) + 1e-5f);
  }
}

TEST(SimdGemmBt, MatchesNaiveReferenceOddShapes) {
  util::Rng rng(13);
  for (const auto& s : kShapes) {
    const std::vector<float> a = random_vec(s.m * s.k, rng);
    const std::vector<float> bt = random_vec(s.n * s.k, rng);  // [N, K]
    // Reference via explicit transpose into row-major [K, N].
    std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
    for (std::int64_t j = 0; j < s.n; ++j)
      for (std::int64_t p = 0; p < s.k; ++p) b[p * s.n + j] = bt[j * s.k + p];
    std::vector<double> ref(static_cast<std::size_t>(s.m * s.n));
    ref_gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
    tensor::gemm_bt(a.data(), bt.data(), c.data(), s.m, s.k, s.n);
    for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], ref[i], tol_for(s.k));
    // Accumulate path on the same shape.
    std::vector<float> c1 = c;
    tensor::gemm_bt(a.data(), bt.data(), c1.data(), s.m, s.k, s.n, /*accumulate=*/true);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c1[i], 2.0 * ref[i], 2.0f * tol_for(s.k));
  }
}

TEST(SimdGemmAt, MatchesNaiveReferenceOddShapes) {
  util::Rng rng(14);
  for (const auto& s : kShapes) {
    const std::vector<float> at = random_vec(s.k * s.m, rng);  // [K, M]
    const std::vector<float> b = random_vec(s.k * s.n, rng);
    std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
    for (std::int64_t p = 0; p < s.k; ++p)
      for (std::int64_t i = 0; i < s.m; ++i) a[i * s.k + p] = at[p * s.m + i];
    std::vector<double> ref(static_cast<std::size_t>(s.m * s.n));
    ref_gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
    tensor::gemm_at(at.data(), b.data(), c.data(), s.m, s.k, s.n);
    for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], ref[i], tol_for(s.k));
  }
}

TEST(SimdGemv, MatchesNaiveReferenceOddShapes) {
  util::Rng rng(15);
  for (const std::int64_t m : {1LL, 3LL, 16LL, 17LL, 130LL}) {
    for (const std::int64_t n : {1LL, 5LL, 31LL, 64LL, 257LL, 1000LL}) {
      const std::vector<float> a = random_vec(m * n, rng);
      const std::vector<float> x = random_vec(n, rng);
      std::vector<float> y(static_cast<std::size_t>(m));
      tensor::gemv(a.data(), x.data(), y.data(), m, n);
      for (std::int64_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < n; ++j)
          s += static_cast<double>(a[i * n + j]) * x[j];
        ASSERT_NEAR(y[i], s, tol_for(n)) << m << "x" << n << " row " << i;
      }
    }
  }
}

TEST(SimdGemvT, MatchesNaiveReferenceOddShapes) {
  util::Rng rng(16);
  for (const std::int64_t m : {1LL, 7LL, 64LL, 333LL}) {
    for (const std::int64_t n : {1LL, 3LL, 17LL, 256LL, 301LL}) {
      const std::vector<float> a = random_vec(m * n, rng);
      const std::vector<float> x = random_vec(m, rng);
      std::vector<float> y(static_cast<std::size_t>(n));
      tensor::gemv_t(a.data(), x.data(), y.data(), m, n);
      for (std::int64_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::int64_t i = 0; i < m; ++i)
          s += static_cast<double>(a[i * n + j]) * x[i];
        ASSERT_NEAR(y[j], s, tol_for(m)) << m << "x" << n << " col " << j;
      }
    }
  }
}

TEST(SimdDot, MatchesNaiveReferenceOddLengths) {
  util::Rng rng(17);
  for (const std::int64_t n : {1LL, 2LL, 3LL, 4LL, 7LL, 8LL, 15LL, 16LL, 17LL,
                               31LL, 33LL, 63LL, 64LL, 65LL, 127LL, 1000LL}) {
    const std::vector<float> a = random_vec(n, rng);
    const std::vector<float> b = random_vec(n, rng);
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      s += static_cast<double>(a[i]) * b[i];
    ASSERT_NEAR(tensor::dot(a.data(), b.data(), n), s, tol_for(n)) << "n=" << n;
  }
}

TEST(SimdSignedSum, MatchesScalarBitWalkBitwise) {
  // The signed-accumulation kernel against a scalar loop with identical
  // structure is a float comparison; against the packed bits themselves the
  // selection must be exact, so check on integer-valued inputs where f32
  // arithmetic is exact and the match is bitwise.
  util::Rng rng(18);
  for (const std::int64_t dim : {1LL, 31LL, 63LL, 64LL, 65LL, 100LL, 127LL,
                                 128LL, 129LL, 200LL, 1000LL}) {
    hd::Hypervector h = hd::Hypervector::random(dim, rng);
    std::vector<float> m(static_cast<std::size_t>(dim));
    for (auto& x : m) x = static_cast<float>(static_cast<int>(rng.uniform(-8.0f, 8.0f)));
    std::int64_t ref = 0;
    for (std::int64_t i = 0; i < dim; ++i)
      ref += static_cast<std::int64_t>(m[static_cast<std::size_t>(i)]) *
             (h.get(i) > 0.0f ? 1 : -1);
    const float got = tensor::simd::signed_sum(m.data(), h.words(), dim);
    ASSERT_EQ(got, static_cast<float>(ref)) << "dim=" << dim;
  }
}

TEST(SimdHdDotAxpy, MatchUnpackedReferenceAcrossTailWords) {
  util::Rng rng(19);
  for (const std::int64_t dim : {1LL, 5LL, 63LL, 64LL, 65LL, 127LL, 129LL, 500LL}) {
    hd::Hypervector h = hd::Hypervector::random(dim, rng);
    std::vector<float> m = random_vec(dim, rng);
    double ref = 0.0;
    for (std::int64_t i = 0; i < dim; ++i)
      ref += static_cast<double>(m[static_cast<std::size_t>(i)]) * h.get(i);
    EXPECT_NEAR(hd::dot(m.data(), h), ref, 1e-3) << "dim=" << dim;

    std::vector<float> updated = m;
    hd::axpy(updated.data(), 0.25f, h);
    for (std::int64_t i = 0; i < dim; ++i) {
      EXPECT_FLOAT_EQ(updated[static_cast<std::size_t>(i)],
                      m[static_cast<std::size_t>(i)] + 0.25f * h.get(i));
    }
  }
}

TEST(SimdHamming, MatchesPerBitReferenceExactly) {
  util::Rng rng(20);
  for (const std::int64_t dim : {1LL, 5LL, 63LL, 64LL, 65LL, 255LL, 256LL,
                                 257LL, 1000LL}) {
    hd::Hypervector a = hd::Hypervector::random(dim, rng);
    hd::Hypervector b = hd::Hypervector::random(dim, rng);
    std::int64_t ref = 0;
    for (std::int64_t i = 0; i < dim; ++i)
      if (a.get(i) != b.get(i)) ++ref;
    ASSERT_EQ(a.hamming(b), ref) << "dim=" << dim;
  }
}

TEST(SimdProjection, ProjectAndDecodeMatchExplicitMatrixOddFeatures) {
  util::Rng rng(21);
  for (const std::int64_t features : {1LL, 63LL, 64LL, 65LL, 100LL, 129LL}) {
    const std::int64_t dim = 37;
    util::Rng prng(100 + features);
    hd::RandomProjection proj(dim, features, prng);
    const std::vector<float> v = random_vec(features, rng);
    tensor::Tensor z = proj.project(v.data());
    for (std::int64_t r = 0; r < dim; ++r) {
      double s = 0.0;
      for (std::int64_t i = 0; i < features; ++i)
        s += static_cast<double>(proj.element(r, i)) * v[static_cast<std::size_t>(i)];
      ASSERT_NEAR(z[r], s, 1e-3) << "features=" << features << " row " << r;
    }
    tensor::Tensor g(tensor::Shape{dim});
    for (std::int64_t r = 0; r < dim; ++r) g[r] = rng.normal();
    tensor::Tensor back = proj.decode(g);
    for (std::int64_t i = 0; i < features; ++i) {
      double s = 0.0;
      for (std::int64_t r = 0; r < dim; ++r)
        s += static_cast<double>(proj.element(r, i)) * g[r];
      ASSERT_NEAR(back[i], s, 1e-3) << "features=" << features << " col " << i;
    }
  }
}

TEST(SimdBatchedInference, PredictAllMatchesPerSamplePredict) {
  util::Rng rng(22);
  const std::int64_t dim = 640, classes = 7, n = 83;  // n off the block size
  hd::HdClassifier clf(classes, dim);
  for (std::int64_t c = 0; c < classes; ++c)
    for (std::int64_t d = 0; d < dim; ++d) clf.class_vector(c)[d] = rng.normal();
  std::vector<hd::Hypervector> queries;
  for (std::int64_t i = 0; i < n; ++i)
    queries.push_back(hd::Hypervector::random(dim, rng));
  for (const auto metric : {hd::Similarity::kCosine, hd::Similarity::kDot}) {
    const std::vector<std::int64_t> batched = clf.predict_all(queries, metric);
    const tensor::Tensor sims_all = clf.similarities_all(queries, metric);
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[static_cast<std::size_t>(i)],
                clf.predict(queries[static_cast<std::size_t>(i)], metric));
      const std::vector<float> sims =
          clf.similarities(queries[static_cast<std::size_t>(i)], metric);
      for (std::int64_t c = 0; c < classes; ++c)
        EXPECT_NEAR(sims_all[i * classes + c], sims[static_cast<std::size_t>(c)], 1e-4f);
    }
  }
}

TEST(SimdBatchedInference, QuantizedEvaluateMatchesPopcountReference) {
  util::Rng rng(23);
  const std::int64_t dim = 1000, classes = 5, n = 140;
  hd::HdClassifier clf(classes, dim);
  for (std::int64_t c = 0; c < classes; ++c)
    for (std::int64_t d = 0; d < dim; ++d) clf.class_vector(c)[d] = rng.normal();
  std::vector<hd::Hypervector> queries;
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < n; ++i) {
    queries.push_back(hd::Hypervector::random(dim, rng));
    labels.push_back(i % classes);
  }
  const std::vector<hd::Hypervector> quantized = clf.quantized_classes();
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i)
    if (hd::HdClassifier::predict_quantized(quantized, queries[static_cast<std::size_t>(i)]) ==
        labels[static_cast<std::size_t>(i)])
      ++correct;
  const double ref = static_cast<double>(correct) / static_cast<double>(n);
  // The float gemm_bt path computes +/-1 dot products exactly, so the
  // accuracy must match the popcount path to the last bit.
  EXPECT_EQ(clf.evaluate_quantized(queries, labels), ref);
}

TEST(SimdThreadInvariance, NewKernelsBitwiseAcrossThreadCounts) {
  util::Rng rng(24);
  const std::int64_t m = 130, n = 257;
  const std::vector<float> a = random_vec(m * n, rng);
  const std::vector<float> x = random_vec(n, rng);
  const std::vector<float> xt = random_vec(m, rng);

  const std::int64_t dim = 1000, classes = 6, ns = 70;
  hd::HdClassifier clf(classes, dim);
  for (std::int64_t c = 0; c < classes; ++c)
    for (std::int64_t d = 0; d < dim; ++d) clf.class_vector(c)[d] = rng.normal();
  std::vector<hd::Hypervector> queries;
  for (std::int64_t i = 0; i < ns; ++i)
    queries.push_back(hd::Hypervector::random(dim, rng));

  std::vector<float> y1, yt1, sims1;
  std::vector<std::int64_t> pred1;
  for (const int threads : {1, 8}) {
    util::set_thread_count(threads);
    std::vector<float> y(static_cast<std::size_t>(m)), yt(static_cast<std::size_t>(n));
    tensor::gemv(a.data(), x.data(), y.data(), m, n);
    tensor::gemv_t(a.data(), xt.data(), yt.data(), m, n);
    const tensor::Tensor sims = clf.similarities_all(queries, hd::Similarity::kCosine);
    const std::vector<std::int64_t> pred = clf.predict_all(queries, hd::Similarity::kCosine);
    std::vector<float> sims_v(sims.data(), sims.data() + sims.numel());
    if (threads == 1) {
      y1 = y;
      yt1 = yt;
      sims1 = sims_v;
      pred1 = pred;
    } else {
      ASSERT_EQ(y, y1);
      ASSERT_EQ(yt, yt1);
      ASSERT_EQ(sims_v, sims1);
      ASSERT_EQ(pred, pred1);
    }
  }
  util::set_thread_count(0);
}

TEST(SimdLayer, ReportsFixedWidthForThisBinary) {
  EXPECT_GT(tensor::simd::kWidth, 0);
  EXPECT_EQ(64 % tensor::simd::kWidth, 0);
  SUCCEED() << "ISA: " << tensor::simd::kIsaName << " width " << tensor::simd::kWidth;
}

}  // namespace
}  // namespace nshd
