// Meta-test keeping the fault-injection machinery honest:
//
//   1. every site name probed via should_fire("...") anywhere in src/ is
//      declared in util::fault::known_sites() (no unregistered probes),
//   2. every declared site is exercised — its literal appears in the source
//      of at least one test that carries the "fault" or "chaos" ctest label
//      (declared sites that nothing injects are dead chaos coverage),
//   3. known_sites() is sorted and duplicate-free, so site listings in docs
//      and error messages stay canonical.
//
// The test parses tests/CMakeLists.txt for the LABELS properties rather
// than hard-coding the labeled test list, so adding a fault-labeled test
// automatically extends the allowed coverage set.  Requires the
// NSHD_SOURCE_DIR compile definition (set in tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/fault.hpp"

namespace nshd {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every `should_fire("<site>")` literal found under `root`.
std::set<std::string> probe_sites_under(const fs::path& root) {
  std::set<std::string> sites;
  const std::string needle = "should_fire(\"";
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    const std::string text = slurp(entry.path());
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      const std::size_t start = pos + needle.size();
      const std::size_t end = text.find('"', start);
      if (end != std::string::npos) sites.insert(text.substr(start, end - start));
    }
  }
  return sites;
}

/// Test names carrying a "fault" or "chaos" LABELS property, parsed from
/// tests/CMakeLists.txt `set_tests_properties(<names...> PROPERTIES LABELS
/// "<labels>")` stanzas.
std::vector<std::string> fault_labeled_tests(const std::string& cmake) {
  std::vector<std::string> names;
  const std::string needle = "set_tests_properties(";
  for (std::size_t pos = cmake.find(needle); pos != std::string::npos;
       pos = cmake.find(needle, pos + 1)) {
    const std::size_t open = pos + needle.size();
    const std::size_t close = cmake.find(')', open);
    if (close == std::string::npos) continue;
    const std::string stanza = cmake.substr(open, close - open);
    const std::size_t props = stanza.find("PROPERTIES");
    const std::size_t labels = stanza.find("LABELS");
    if (props == std::string::npos || labels == std::string::npos) continue;
    const std::size_t q0 = stanza.find('"', labels);
    const std::size_t q1 = q0 == std::string::npos ? std::string::npos
                                                   : stanza.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::string label_list = stanza.substr(q0 + 1, q1 - q0 - 1);
    if (label_list.find("fault") == std::string::npos &&
        label_list.find("chaos") == std::string::npos)
      continue;
    std::istringstream tokens(stanza.substr(0, props));
    std::string name;
    while (tokens >> name) names.push_back(name);
  }
  return names;
}

TEST(FaultRegistry, KnownSitesAreSortedAndUnique) {
  const std::vector<std::string>& sites = util::fault::known_sites();
  ASSERT_FALSE(sites.empty());
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()), sites.end());
}

TEST(FaultRegistry, EveryProbeInSrcIsDeclared) {
  const fs::path src = fs::path(NSHD_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::exists(src));
  const std::set<std::string> probed = probe_sites_under(src);
  ASSERT_FALSE(probed.empty());
  const std::vector<std::string>& declared = util::fault::known_sites();
  for (const std::string& site : probed) {
    EXPECT_NE(std::find(declared.begin(), declared.end(), site), declared.end())
        << "should_fire(\"" << site
        << "\") probe in src/ is missing from util::fault::known_sites()";
  }
}

TEST(FaultRegistry, EveryDeclaredSiteIsExercisedByLabeledTest) {
  const fs::path root(NSHD_SOURCE_DIR);
  const std::vector<std::string> tests =
      fault_labeled_tests(slurp(root / "tests" / "CMakeLists.txt"));
  ASSERT_FALSE(tests.empty()) << "no fault/chaos-labeled tests declared";

  std::string corpus;
  for (const std::string& name : tests) {
    const fs::path source = root / "tests" / (name + ".cpp");
    ASSERT_TRUE(fs::exists(source))
        << "labeled test " << name << " has no source at " << source;
    corpus += slurp(source);
  }
  for (const std::string& site : util::fault::known_sites()) {
    EXPECT_NE(corpus.find('"' + site + '"'), std::string::npos)
        << "fault site " << site
        << " is not exercised by any fault/chaos-labeled test";
  }
}

}  // namespace
}  // namespace nshd
