// Tests for src/models: zoo construction, paper layer indexing, cut-point
// shapes, and the pretraining cache.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/synth_cifar.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"
#include "nn/serialize.hpp"

namespace nshd::models {
namespace {

TEST(Zoo, RegistryNamesResolve) {
  for (const std::string& name : zoo_model_names()) {
    ZooModel m = make_model(name, 10, 1);
    EXPECT_EQ(m.name, name);
    EXPECT_GT(m.feature_count, 0u);
    EXPECT_FALSE(m.paper_cut_layers.empty());
  }
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW(make_model("resnet50", 10, 1), std::invalid_argument);
}

TEST(Zoo, DisplayNamesMatchPaper) {
  EXPECT_EQ(display_name("vgg16s"), "VGG16");
  EXPECT_EQ(display_name("mobilenetv2s"), "Mobilenetv2");
  EXPECT_EQ(display_name("efficientnet_b0s"), "Efficientnetb0");
  EXPECT_EQ(display_name("efficientnet_b7s"), "Efficientnetb7");
}

TEST(Zoo, Vgg16HasTorchvisionIndexing) {
  ZooModel m = make_vgg16s(10, 1);
  // torchvision VGG16 `features` has 31 entries; pools at 4,9,16,23,30.
  EXPECT_EQ(m.feature_count, 31u);
  for (std::size_t pool_index : {4u, 9u, 16u, 23u, 30u}) {
    EXPECT_EQ(m.net.layer(pool_index).kind(), nn::LayerKind::kMaxPool)
        << "index " << pool_index;
  }
  // Convs at 0,2,5,7,10,...
  EXPECT_EQ(m.net.layer(0).kind(), nn::LayerKind::kConv);
  EXPECT_EQ(m.net.layer(28).kind(), nn::LayerKind::kConv);
  EXPECT_EQ(m.net.layer(27).kind(), nn::LayerKind::kActivation);
  EXPECT_EQ(m.paper_cut_layers, (std::vector<std::size_t>{27, 29}));
}

TEST(Zoo, MobilenetV2HasOperatorIndexing) {
  ZooModel m = make_mobilenetv2s(10, 1);
  EXPECT_EQ(m.feature_count, 19u);  // stem + 17 blocks + last conv
  EXPECT_EQ(m.paper_cut_layers, (std::vector<std::size_t>{14, 17}));
}

TEST(Zoo, EfficientNetHasBlockIndexing) {
  ZooModel b0 = make_efficientnet_b0s(10, 1);
  EXPECT_EQ(b0.feature_count, 9u);  // stem + 7 stages + head conv
  EXPECT_EQ(b0.paper_cut_layers, (std::vector<std::size_t>{5, 6, 7, 8}));
  ZooModel b7 = make_efficientnet_b7s(10, 1);
  EXPECT_EQ(b7.feature_count, 9u);
  EXPECT_EQ(b7.paper_cut_layers, (std::vector<std::size_t>{6, 7, 8}));
}

TEST(Zoo, B7IsLargerThanB0) {
  ZooModel b0 = make_efficientnet_b0s(10, 1);
  ZooModel b7 = make_efficientnet_b7s(10, 1);
  EXPECT_GT(nn::parameter_count(b7.net), 2 * nn::parameter_count(b0.net));
}

TEST(Zoo, ForwardShapesAreConsistent) {
  for (const std::string& name : zoo_model_names()) {
    ZooModel m = make_model(name, 10, 1);
    tensor::Tensor x(tensor::Shape{2, 3, 32, 32});
    const tensor::Tensor logits = m.net.forward(x, /*training=*/false);
    EXPECT_EQ(logits.shape(), tensor::Shape({2, 10})) << name;
  }
}

TEST(Zoo, FeatureShapeAtMatchesForward) {
  ZooModel m = make_efficientnet_b0s(10, 1);
  tensor::Tensor x(tensor::Shape{1, 3, 32, 32});
  for (std::size_t cut : m.paper_cut_layers) {
    const tensor::Tensor feat = m.net.forward_to(x, cut);
    const tensor::Shape expect = m.feature_shape_at(cut);
    EXPECT_EQ(feat.numel(), expect.numel()) << "cut " << cut;
    EXPECT_EQ(m.feature_dim_at(cut), expect.numel());
  }
}

TEST(Zoo, SpatialExtentNeverGrowsWithDepth) {
  for (const std::string& name : zoo_model_names()) {
    ZooModel m = make_model(name, 10, 1);
    std::int64_t last_h = 1 << 20;
    for (std::size_t i = 0; i < m.feature_count; ++i) {
      const tensor::Shape s = m.feature_shape_at(i);
      EXPECT_LE(s[1], last_h) << name << " layer " << i;
      last_h = s[1];
    }
    // Every backbone ends spatially collapsed relative to the 32x32 input.
    EXPECT_LE(last_h, 2) << name;
  }
}

TEST(Zoo, CutLayersAreWithinFeatureStack) {
  for (const std::string& name : zoo_model_names()) {
    ZooModel m = make_model(name, 10, 1);
    for (std::size_t cut : m.paper_cut_layers) EXPECT_LT(cut, m.feature_count);
    for (std::size_t cut : m.energy_cut_layers) EXPECT_LT(cut, m.feature_count);
  }
}

TEST(Zoo, SeedChangesWeights) {
  ZooModel a = make_mobilenetv2s(10, 1);
  ZooModel b = make_mobilenetv2s(10, 2);
  const auto pa = a.net.params();
  const auto pb = b.net.params();
  ASSERT_EQ(pa.size(), pb.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < pa.size() && !any_diff; ++i) {
    for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      if (pa[i]->value[j] != pb[i]->value[j]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Pretrained, CacheRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nshd_pretrain_test_" + std::to_string(::getpid()));
  {
    util::DiskCache cache(dir.string());
    data::SynthCifarConfig data_config;
    data_config.num_classes = 3;
    data_config.samples_per_class = 6;
    data_config.image_size = 16;
    const data::Dataset tiny = data::make_synth_cifar(data_config);

    PretrainOptions options;
    options.train.epochs = 1;
    options.train.batch_size = 6;
    options.dataset_key = data_config.cache_key("train");

    ZooModel first = pretrained_model("mobilenetv2s", tiny, options, cache);
    const std::string key =
        pretrain_cache_key("mobilenetv2s", options, tiny.num_classes);
    // Weights are stored as a checkpoint entry, not a legacy blob.
    EXPECT_TRUE(cache.get_checkpoint(key).ok());

    // Second call must load, not retrain: weights identical.
    ZooModel second = pretrained_model("mobilenetv2s", tiny, options, cache);
    const auto pa = first.net.params();
    const auto pb = second.net.params();
    for (std::size_t i = 0; i < pa.size(); ++i) {
      for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j) {
        ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Pretrained, CacheKeyReflectsConfig) {
  PretrainOptions a;
  a.dataset_key = "ds1";
  PretrainOptions b = a;
  b.train.epochs = 99;
  EXPECT_NE(pretrain_cache_key("vgg16s", a, 10), pretrain_cache_key("vgg16s", b, 10));
  EXPECT_NE(pretrain_cache_key("vgg16s", a, 10), pretrain_cache_key("vgg16s", a, 100));
  EXPECT_NE(pretrain_cache_key("vgg16s", a, 10), pretrain_cache_key("mobilenetv2s", a, 10));
}

}  // namespace
}  // namespace nshd::models
