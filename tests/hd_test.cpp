// Tests for src/hd: hypervector packing/kernels, random projection,
// ID-level encoding, and the MASS classifier — including the statistical
// invariants HD computing rests on (quasi-orthogonality, similarity
// preservation).
#include <gtest/gtest.h>

#include <cmath>

#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "hd/projection.hpp"
#include "hd/vanilla.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd::hd {
namespace {

TEST(Hypervector, SetGetFlip) {
  Hypervector h(130);
  EXPECT_EQ(h.get(0), -1.0f);
  h.set(0, true);
  EXPECT_EQ(h.get(0), 1.0f);
  h.set(129, true);
  EXPECT_EQ(h.get(129), 1.0f);
  h.flip(129);
  EXPECT_EQ(h.get(129), -1.0f);
}

TEST(Hypervector, FromSignThresholdsAtZero) {
  const float values[] = {-0.5f, 0.0f, 2.0f, -1e-9f};
  const Hypervector h = Hypervector::from_sign(values, 4);
  EXPECT_EQ(h.get(0), -1.0f);
  EXPECT_EQ(h.get(1), 1.0f);  // ties break toward +1
  EXPECT_EQ(h.get(2), 1.0f);
  EXPECT_EQ(h.get(3), -1.0f);
}

TEST(Hypervector, RandomIsRoughlyBalanced) {
  util::Rng rng(1);
  const Hypervector h = Hypervector::random(10000, rng);
  std::int64_t pos = 0;
  for (std::int64_t i = 0; i < h.dim(); ++i)
    if (h.get(i) > 0.0f) ++pos;
  EXPECT_NEAR(static_cast<double>(pos) / 10000.0, 0.5, 0.03);
}

TEST(Hypervector, RandomPairQuasiOrthogonal) {
  // Kanerva: random hypervectors overlap in ~D/2 bits with stddev sqrt(D/4),
  // i.e. normalized dot ~ N(0, 1/sqrt(D)).
  util::Rng rng(2);
  const std::int64_t dim = 10000;
  for (int trial = 0; trial < 10; ++trial) {
    const Hypervector a = Hypervector::random(dim, rng);
    const Hypervector b = Hypervector::random(dim, rng);
    const double normalized = static_cast<double>(a.dot(b)) / dim;
    EXPECT_LT(std::fabs(normalized), 5.0 / std::sqrt(static_cast<double>(dim)));
  }
}

TEST(Hypervector, DotWithSelfIsDim) {
  util::Rng rng(3);
  const Hypervector h = Hypervector::random(777, rng);
  EXPECT_EQ(h.dot(h), 777);
  EXPECT_EQ(h.hamming(h), 0);
}

TEST(Hypervector, HammingDotRelation) {
  util::Rng rng(4);
  const Hypervector a = Hypervector::random(512, rng);
  const Hypervector b = Hypervector::random(512, rng);
  EXPECT_EQ(a.dot(b), 512 - 2 * a.hamming(b));
}

TEST(Hypervector, BindIsQuasiOrthogonalToInputs) {
  util::Rng rng(5);
  const std::int64_t dim = 8192;
  const Hypervector a = Hypervector::random(dim, rng);
  const Hypervector b = Hypervector::random(dim, rng);
  const Hypervector bound = a.bind(b);
  EXPECT_LT(std::fabs(static_cast<double>(bound.dot(a))) / dim, 0.06);
  EXPECT_LT(std::fabs(static_cast<double>(bound.dot(b))) / dim, 0.06);
}

TEST(Hypervector, BindIsSelfInverse) {
  util::Rng rng(6);
  const Hypervector a = Hypervector::random(300, rng);
  const Hypervector b = Hypervector::random(300, rng);
  const Hypervector unbound = a.bind(b).bind(b);
  EXPECT_EQ(unbound, a);
}

TEST(Hypervector, BindElementwiseMultiply) {
  Hypervector a(2), b(2);
  a.set(0, true);   // +1
  a.set(1, false);  // -1
  b.set(0, false);  // -1
  b.set(1, false);  // -1
  const Hypervector c = a.bind(b);
  EXPECT_EQ(c.get(0), -1.0f);  // +1 * -1
  EXPECT_EQ(c.get(1), 1.0f);   // -1 * -1
}

TEST(Hypervector, TensorRoundTrip) {
  util::Rng rng(7);
  const Hypervector h = Hypervector::random(100, rng);
  const tensor::Tensor t = h.to_tensor();
  const Hypervector back = Hypervector::from_sign(t);
  EXPECT_EQ(h, back);
}

TEST(FloatDot, MatchesUnpackedArithmetic) {
  util::Rng rng(8);
  const std::int64_t dim = 200;
  const Hypervector h = Hypervector::random(dim, rng);
  std::vector<float> m(static_cast<std::size_t>(dim));
  for (auto& v : m) v = rng.normal();
  double expect = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) expect += m[static_cast<std::size_t>(i)] * h.get(i);
  EXPECT_NEAR(dot(m.data(), h), expect, 1e-3);
}

TEST(Axpy, MatchesUnpackedArithmetic) {
  util::Rng rng(9);
  const std::int64_t dim = 130;
  const Hypervector h = Hypervector::random(dim, rng);
  std::vector<float> m(static_cast<std::size_t>(dim), 1.0f);
  axpy(m.data(), 0.5f, h);
  for (std::int64_t i = 0; i < dim; ++i)
    EXPECT_FLOAT_EQ(m[static_cast<std::size_t>(i)], 1.0f + 0.5f * h.get(i));
}

TEST(BundleAccumulator, MajorityVote) {
  util::Rng rng(10);
  const std::int64_t dim = 64;
  Hypervector a(dim), b(dim), c(dim);
  // a = b = +1 at position 3; c = -1 there: majority is +1.
  a.set(3, true);
  b.set(3, true);
  BundleAccumulator acc(dim);
  acc.add(a);
  acc.add(b);
  acc.add(c);
  EXPECT_EQ(acc.count(), 3);
  const Hypervector m = acc.majority(rng);
  EXPECT_EQ(m.get(3), 1.0f);
  EXPECT_EQ(m.get(5), -1.0f);  // all three are -1 there
}

TEST(BundleAccumulator, BundleIsSimilarToInputs) {
  // The defining property of bundling: the majority vector stays similar to
  // each input.
  util::Rng rng(11);
  const std::int64_t dim = 4096;
  BundleAccumulator acc(dim);
  std::vector<Hypervector> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(Hypervector::random(dim, rng));
    acc.add(inputs.back());
  }
  const Hypervector m = acc.majority(rng);
  const Hypervector unrelated = Hypervector::random(dim, rng);
  for (const auto& in : inputs) {
    EXPECT_GT(static_cast<double>(m.dot(in)) / dim, 0.2);
  }
  EXPECT_LT(std::fabs(static_cast<double>(m.dot(unrelated))) / dim, 0.06);
}

// --- RandomProjection ---

TEST(RandomProjection, ProjectMatchesExplicitMatrix) {
  util::Rng rng(12);
  RandomProjection proj(50, 37, rng);
  std::vector<float> v(37);
  util::Rng vr(13);
  for (auto& x : v) x = vr.normal();
  const tensor::Tensor z = proj.project(v.data());
  for (std::int64_t r = 0; r < 50; ++r) {
    double expect = 0.0;
    for (std::int64_t c = 0; c < 37; ++c) expect += proj.element(r, c) * v[static_cast<std::size_t>(c)];
    EXPECT_NEAR(z[r], expect, 1e-3);
  }
}

TEST(RandomProjection, EncodeIsSignOfProjection) {
  util::Rng rng(14);
  RandomProjection proj(64, 10, rng);
  std::vector<float> v(10);
  util::Rng vr(15);
  for (auto& x : v) x = vr.normal();
  const tensor::Tensor z = proj.project(v.data());
  const Hypervector h = proj.encode(v.data());
  for (std::int64_t d = 0; d < 64; ++d) {
    EXPECT_EQ(h.get(d) > 0.0f, z[d] >= 0.0f);
  }
}

TEST(RandomProjection, PreservesSimilarity) {
  // Random projection to bipolar codes approximately preserves angles:
  // nearby inputs get similar hypervectors, far inputs dissimilar ones.
  util::Rng rng(16);
  RandomProjection proj(4096, 32, rng);
  util::Rng vr(17);
  std::vector<float> a(32), near(32), far(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = vr.normal();
    near[i] = a[i] + 0.1f * vr.normal();
    far[i] = vr.normal();
  }
  const Hypervector ha = proj.encode(a.data());
  const Hypervector hn = proj.encode(near.data());
  const Hypervector hf = proj.encode(far.data());
  EXPECT_GT(ha.dot(hn), ha.dot(hf));
  EXPECT_GT(static_cast<double>(ha.dot(hn)) / 4096.0, 0.8);
}

TEST(RandomProjection, DecodeIsAdjointOfProject) {
  // <P v, g> == <v, P^T g>.
  util::Rng rng(18);
  RandomProjection proj(40, 23, rng);
  util::Rng vr(19);
  tensor::Tensor v(tensor::Shape{23}), g(tensor::Shape{40});
  for (float& x : v.span()) x = vr.normal();
  for (float& x : g.span()) x = vr.normal();
  const tensor::Tensor z = proj.project(v);
  const tensor::Tensor back = proj.decode(g);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < 40; ++i) lhs += static_cast<double>(z[i]) * g[i];
  for (std::int64_t i = 0; i < 23; ++i) rhs += static_cast<double>(v[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(RandomProjection, EncodeWithPreSignReturnsBoth) {
  util::Rng rng(20);
  RandomProjection proj(32, 8, rng);
  tensor::Tensor v(tensor::Shape{8});
  util::Rng vr(21);
  for (float& x : v.span()) x = vr.normal();
  tensor::Tensor pre;
  const Hypervector h = proj.encode(v, pre);
  EXPECT_EQ(pre.numel(), 32);
  for (std::int64_t d = 0; d < 32; ++d) EXPECT_EQ(h.get(d) > 0.0f, pre[d] >= 0.0f);
}

TEST(RandomProjection, PackedBytes) {
  util::Rng rng(22);
  RandomProjection proj(3000, 100, rng);
  // 100 features -> 2 words per row -> 3000 * 16 bytes.
  EXPECT_EQ(proj.packed_bytes(), 3000 * 2 * 8);
}

TEST(RandomProjection, EncodeAllMatchesPerSampleEncode) {
  util::Rng rng(24);
  RandomProjection proj(512, 100, rng);
  util::Rng vr(25);
  std::vector<tensor::Tensor> batch;
  for (int i = 0; i < 9; ++i) {
    tensor::Tensor v(tensor::Shape{100});
    for (float& x : v.span()) x = vr.normal();
    batch.push_back(std::move(v));
  }
  const std::vector<Hypervector> all = proj.encode_all(batch);
  ASSERT_EQ(all.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(all[i], proj.encode(batch[i]));
}

TEST(RandomProjection, ThreadCountDoesNotChangeResults) {
  // features = 100 is deliberately not divisible by 64, so the padded tail
  // word is exercised under both pool sizes.
  util::Rng rng(26);
  RandomProjection proj(1000, 100, rng);
  util::Rng vr(27);
  tensor::Tensor v(tensor::Shape{100}), g(tensor::Shape{1000});
  for (float& x : v.span()) x = vr.normal();
  for (float& x : g.span()) x = vr.normal();
  util::set_thread_count(1);
  const tensor::Tensor z1 = proj.project(v);
  const Hypervector h1 = proj.encode(v);
  const tensor::Tensor d1 = proj.decode(g);
  util::set_thread_count(8);
  const tensor::Tensor z8 = proj.project(v);
  const Hypervector h8 = proj.encode(v);
  const tensor::Tensor d8 = proj.decode(g);
  util::set_thread_count(1);
  for (std::int64_t i = 0; i < 1000; ++i) ASSERT_EQ(z1[i], z8[i]) << "project row " << i;
  EXPECT_EQ(h1, h8);
  for (std::int64_t i = 0; i < 100; ++i) ASSERT_EQ(d1[i], d8[i]) << "decode feature " << i;
}

// --- IdLevelEncoder (VanillaHD) ---

TEST(IdLevel, LevelQuantization) {
  IdLevelConfig config;
  config.levels = 4;
  config.min_value = 0.0f;
  config.max_value = 1.0f;
  const IdLevelEncoder enc(3, config);
  EXPECT_EQ(enc.level_of(-1.0f), 0);
  EXPECT_EQ(enc.level_of(0.1f), 0);
  EXPECT_EQ(enc.level_of(0.3f), 1);
  EXPECT_EQ(enc.level_of(0.6f), 2);
  EXPECT_EQ(enc.level_of(0.9f), 3);
  EXPECT_EQ(enc.level_of(2.0f), 3);
}

TEST(IdLevel, NeighbouringLevelsAreSimilar) {
  IdLevelConfig config;
  config.dim = 4096;
  config.levels = 16;
  const IdLevelEncoder enc(3, config);
  const double adjacent =
      static_cast<double>(enc.level_hv(0).dot(enc.level_hv(1))) / config.dim;
  const double extremes =
      static_cast<double>(enc.level_hv(0).dot(enc.level_hv(15))) / config.dim;
  EXPECT_GT(adjacent, 0.8);
  EXPECT_LT(extremes, adjacent - 0.3);
}

TEST(IdLevel, SimilarInputsGetSimilarCodes) {
  IdLevelConfig config;
  config.dim = 4096;
  const IdLevelEncoder enc(16, config);
  util::Rng rng(23);
  std::vector<float> a(16), near(16), far(16);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = rng.uniform(-0.8f, 0.8f);
    near[i] = a[i] + 0.02f;
    far[i] = rng.uniform(-0.8f, 0.8f);
  }
  const Hypervector ha = enc.encode(a.data());
  const Hypervector hn = enc.encode(near.data());
  const Hypervector hf = enc.encode(far.data());
  EXPECT_GT(ha.dot(hn), ha.dot(hf));
}

TEST(IdLevel, DeterministicEncoding) {
  IdLevelConfig config;
  config.dim = 512;
  const IdLevelEncoder enc(8, config);
  std::vector<float> v{0.1f, -0.5f, 0.9f, 0.0f, 0.3f, -0.9f, 0.5f, -0.2f};
  EXPECT_EQ(enc.encode(v.data()), enc.encode(v.data()));
}

// --- HdClassifier ---

/// Builds a toy separable HD problem: per class, a random prototype
/// hypervector; samples are the prototype with a fraction of bits flipped.
struct ToyProblem {
  std::vector<Hypervector> train, test;
  std::vector<std::int64_t> train_labels, test_labels;
  std::int64_t dim, classes;
};

ToyProblem make_toy(std::int64_t dim, std::int64_t classes, std::int64_t per_class,
                    double flip_fraction, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Hypervector> prototypes;
  for (std::int64_t c = 0; c < classes; ++c)
    prototypes.push_back(Hypervector::random(dim, rng));
  ToyProblem p;
  p.dim = dim;
  p.classes = classes;
  auto sample = [&](std::int64_t c) {
    Hypervector h = prototypes[static_cast<std::size_t>(c)];
    const auto flips = static_cast<std::int64_t>(flip_fraction * static_cast<double>(dim));
    for (std::int64_t f = 0; f < flips; ++f)
      h.flip(static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(dim))));
    return h;
  };
  for (std::int64_t c = 0; c < classes; ++c) {
    for (std::int64_t i = 0; i < per_class; ++i) {
      p.train.push_back(sample(c));
      p.train_labels.push_back(c);
      p.test.push_back(sample(c));
      p.test_labels.push_back(c);
    }
  }
  return p;
}

TEST(HdClassifier, BundleInitClassifiesSeparableData) {
  const ToyProblem p = make_toy(2048, 5, 20, 0.25, 31);
  HdClassifier clf(p.classes, p.dim);
  clf.bundle_init(p.train, p.train_labels);
  EXPECT_GT(clf.evaluate(p.test, p.test_labels), 0.95);
}

TEST(HdClassifier, MassImprovesOnHardProblem) {
  const ToyProblem p = make_toy(1024, 8, 25, 0.42, 37);
  HdClassifier clf(p.classes, p.dim);
  clf.bundle_init(p.train, p.train_labels);
  const double before = clf.evaluate(p.test, p.test_labels);
  MassConfig mass;
  mass.epochs = 15;
  clf.train(p.train, p.train_labels, mass);
  const double after = clf.evaluate(p.test, p.test_labels);
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.8);
}

TEST(HdClassifier, SimilaritiesCosineRange) {
  const ToyProblem p = make_toy(512, 3, 10, 0.3, 41);
  HdClassifier clf(p.classes, p.dim);
  clf.bundle_init(p.train, p.train_labels);
  const auto sims = clf.similarities(p.test[0], Similarity::kCosine);
  ASSERT_EQ(sims.size(), 3u);
  for (float s : sims) {
    EXPECT_GE(s, -1.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST(HdClassifier, ApplyUpdatePullsTowardSample) {
  util::Rng rng(43);
  const std::int64_t dim = 1024;
  HdClassifier clf(2, dim);
  const Hypervector h = Hypervector::random(dim, rng);
  const auto before = clf.similarities(h, Similarity::kDot);
  clf.apply_update(h, {1.0f, -1.0f}, 0.5f);
  const auto after = clf.similarities(h, Similarity::kDot);
  EXPECT_GT(after[0], before[0]);
  EXPECT_LT(after[1], before[1]);
}

TEST(HdClassifier, QueryGradientDirection) {
  // Moving H along -query_gradient must increase the under-predicted class's
  // similarity contribution: check sign structure against a direct formula.
  util::Rng rng(47);
  const std::int64_t dim = 256;
  HdClassifier clf(2, dim);
  // Non-trivial class vectors.
  for (std::int64_t d = 0; d < dim; ++d) {
    clf.class_vector(0)[d] = rng.normal();
    clf.class_vector(1)[d] = rng.normal();
  }
  const std::vector<float> update{1.0f, 0.0f};  // class 0 under-predicted
  const tensor::Tensor g = clf.query_gradient(update);
  // g = -u_0 * C_0 / norm: anti-parallel to C_0.
  double dot_c0 = 0.0;
  for (std::int64_t d = 0; d < dim; ++d)
    dot_c0 += static_cast<double>(g[d]) * clf.class_vector(0)[d];
  EXPECT_LT(dot_c0, 0.0);
}

TEST(HdClassifier, QuantizedPredictionAgreesMostly) {
  const ToyProblem p = make_toy(2048, 4, 15, 0.3, 53);
  HdClassifier clf(p.classes, p.dim);
  MassConfig mass;
  mass.epochs = 10;
  clf.train(p.train, p.train_labels, mass);
  const auto quantized = clf.quantized_classes();
  std::int64_t agree = 0;
  for (const auto& h : p.test) {
    if (clf.predict(h) == HdClassifier::predict_quantized(quantized, h)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(p.test.size()), 0.9);
}

TEST(HdClassifier, IncrementalNormsMatchFullRecompute) {
  // apply_update maintains the cosine norm cache incrementally; after full
  // MASS training the cached norms must agree with a recompute from the
  // bank (up to float rounding of the bank updates themselves).
  const ToyProblem p = make_toy(1024, 6, 20, 0.35, 67);
  HdClassifier clf(p.classes, p.dim);
  clf.bundle_init(p.train, p.train_labels);
  MassConfig mass;
  mass.epochs = 10;
  clf.train(p.train, p.train_labels, mass);
  const std::vector<float>& cached = clf.class_norms();
  ASSERT_EQ(cached.size(), static_cast<std::size_t>(p.classes));
  for (std::int64_t c = 0; c < p.classes; ++c) {
    double sq = 0.0;
    const float* row = clf.class_vector(c);
    for (std::int64_t d = 0; d < p.dim; ++d)
      sq += static_cast<double>(row[d]) * row[d];
    const double expect = std::sqrt(sq);
    EXPECT_NEAR(cached[static_cast<std::size_t>(c)], expect, 1e-3 * std::max(1.0, expect))
        << "class " << c;
  }
}

TEST(HdClassifier, TrainingAndEvalAreThreadCountInvariant) {
  const ToyProblem p = make_toy(512, 5, 15, 0.35, 71);
  auto train_once = [&](int threads) {
    util::set_thread_count(threads);
    HdClassifier clf(p.classes, p.dim);
    MassConfig mass;
    mass.epochs = 5;
    clf.train(p.train, p.train_labels, mass);
    return clf;
  };
  const HdClassifier serial = train_once(1);
  const HdClassifier threaded = train_once(8);
  // The bank must be bitwise identical: fixed chunking keeps every
  // accumulation order independent of the pool size.
  for (std::int64_t i = 0; i < serial.bank().numel(); ++i)
    ASSERT_EQ(serial.bank()[i], threaded.bank()[i]) << "bank element " << i;
  util::set_thread_count(8);
  const double acc8 = serial.evaluate(p.test, p.test_labels);
  const double accq8 = serial.evaluate_quantized(p.test, p.test_labels);
  const auto sims8 = serial.similarities(p.test[0], Similarity::kCosine);
  util::set_thread_count(1);
  EXPECT_EQ(serial.evaluate(p.test, p.test_labels), acc8);
  EXPECT_EQ(serial.evaluate_quantized(p.test, p.test_labels), accq8);
  const auto sims1 = serial.similarities(p.test[0], Similarity::kCosine);
  ASSERT_EQ(sims1.size(), sims8.size());
  for (std::size_t c = 0; c < sims1.size(); ++c) EXPECT_EQ(sims1[c], sims8[c]);
}

TEST(HdClassifier, PerceptronEpochFixesMispredictions) {
  const ToyProblem p = make_toy(1024, 5, 20, 0.4, 61);
  HdClassifier clf(p.classes, p.dim);
  clf.bundle_init(p.train, p.train_labels);
  double acc = 0.0;
  for (int e = 0; e < 15; ++e) acc = clf.perceptron_epoch(p.train, p.train_labels, 1.0f);
  EXPECT_GT(acc, 0.8);
  EXPECT_GT(clf.evaluate(p.test, p.test_labels), 0.7);
}

TEST(HdClassifier, PerceptronSkipsCorrectSamples) {
  util::Rng rng(67);
  const std::int64_t dim = 256;
  HdClassifier clf(2, dim);
  const Hypervector h = Hypervector::random(dim, rng);
  // Make class 0 already aligned with h.
  axpy(clf.class_vector(0), 5.0f, h);
  const tensor::Tensor before = clf.bank();
  clf.perceptron_epoch({h}, {0}, 1.0f);
  // Correctly predicted: no update at all.
  for (std::int64_t i = 0; i < before.numel(); ++i)
    EXPECT_EQ(clf.bank()[i], before[i]);
}

TEST(HdClassifier, QuantizedEvaluationCloseToFloat) {
  const ToyProblem p = make_toy(2048, 5, 20, 0.3, 71);
  HdClassifier clf(p.classes, p.dim);
  MassConfig mass;
  mass.epochs = 10;
  clf.train(p.train, p.train_labels, mass);
  const double float_acc = clf.evaluate(p.test, p.test_labels);
  const double quant_acc = clf.evaluate_quantized(p.test, p.test_labels);
  EXPECT_NEAR(quant_acc, float_acc, 0.08);  // "very minor impacts" (Sec. VI-B)
}

TEST(HdClassifier, AddClassLearnsIncrementally) {
  // Train on 4 classes, then one-shot-add a 5th without touching the bank;
  // the grown model must classify all 5.
  const ToyProblem base = make_toy(2048, 4, 20, 0.3, 73);
  HdClassifier clf(4, 2048);
  MassConfig mass;
  mass.epochs = 8;
  clf.train(base.train, base.train_labels, mass);

  const ToyProblem extra = make_toy(2048, 5, 20, 0.3, 73);  // same prototypes +1
  std::vector<Hypervector> fifth_train, fifth_test;
  for (std::size_t i = 0; i < extra.train.size(); ++i) {
    if (extra.train_labels[i] == 4) fifth_train.push_back(extra.train[i]);
    if (extra.test_labels[i] == 4) fifth_test.push_back(extra.test[i]);
  }
  const std::int64_t new_class = clf.add_class(fifth_train);
  EXPECT_EQ(new_class, 4);
  EXPECT_EQ(clf.num_classes(), 5);

  // Old classes still work...
  EXPECT_GT(clf.evaluate(base.test, base.test_labels), 0.8);
  // ...and the new class is recognized from its one-shot bundle.
  std::int64_t correct = 0;
  for (const auto& h : fifth_test)
    if (clf.predict(h) == new_class) ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(fifth_test.size()), 0.7);
}

TEST(HdClassifier, AddClassPreservesExistingVectors) {
  util::Rng rng(79);
  HdClassifier clf(2, 128);
  for (std::int64_t d = 0; d < 128; ++d) {
    clf.class_vector(0)[d] = rng.normal();
    clf.class_vector(1)[d] = rng.normal();
  }
  const std::vector<float> before0(clf.class_vector(0), clf.class_vector(0) + 128);
  const std::vector<float> before1(clf.class_vector(1), clf.class_vector(1) + 128);
  clf.add_class({Hypervector::random(128, rng)});
  for (std::int64_t d = 0; d < 128; ++d) {
    EXPECT_EQ(clf.class_vector(0)[d], before0[static_cast<std::size_t>(d)]);
    EXPECT_EQ(clf.class_vector(1)[d], before1[static_cast<std::size_t>(d)]);
  }
}

class MassDimensions : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MassDimensions, AccuracyHoldsAcrossDimensionality) {
  // The paper's Fig. 10 premise: enough dimensions => stable accuracy.
  const std::int64_t dim = GetParam();
  const ToyProblem p = make_toy(dim, 5, 20, 0.3, 59);
  HdClassifier clf(p.classes, p.dim);
  MassConfig mass;
  mass.epochs = 8;
  clf.train(p.train, p.train_labels, mass);
  EXPECT_GT(clf.evaluate(p.test, p.test_labels), dim >= 1000 ? 0.9 : 0.7);
}

INSTANTIATE_TEST_SUITE_P(Dims, MassDimensions,
                         ::testing::Values<std::int64_t>(500, 1000, 3000, 10000));

}  // namespace
}  // namespace nshd::hd
