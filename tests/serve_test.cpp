// Tests for the serving engine: dynamic batch formation (deadline vs
// max-batch flush), typed rejection (queue-full / bad-shape / unknown /
// shutdown), shutdown drain semantics, checkpoint live-reload mid-traffic
// (including the fault-injected corruption matrix), and bitwise parity of
// batched responses against the single-request pipeline.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "serve/engine.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace nshd {
namespace {

using serve::Engine;
using serve::EngineConfig;
using serve::FlushReason;
using serve::ModelBundle;
using serve::Response;
using serve::SubmitStatus;

constexpr std::int64_t kClasses = 4;
constexpr std::size_t kCut = 4;

data::Dataset tiny_dataset(std::int64_t per_class = 8, std::uint64_t seed = 42) {
  data::SynthCifarConfig config;
  config.num_classes = kClasses;
  config.samples_per_class = per_class;
  config.seed = seed;
  return data::make_synth_cifar(config);
}

core::NshdConfig tiny_nshd_config() {
  core::NshdConfig config;
  config.dim = 512;
  config.manifold_features = 32;
  config.epochs = 2;
  config.use_kd = false;
  config.train_manifold = false;
  return config;
}

/// A small trained bundle: mobilenetv2s cut 4, MASS-trained (no KD) on a
/// tiny synthetic set so class scores are non-degenerate.
std::unique_ptr<ModelBundle> make_trained_bundle(std::int64_t max_batch,
                                                 std::uint64_t model_seed = 7) {
  auto bundle = std::make_unique<ModelBundle>(
      models::make_model("mobilenetv2s", kClasses, model_seed), kCut,
      tiny_nshd_config(), max_batch);
  const data::Dataset train = tiny_dataset();
  const core::ExtractedFeatures features =
      core::extract_features(bundle->plan, train, max_batch);
  bundle->nshd.train(features, train.labels, /*teacher_logits=*/nullptr);
  return bundle;
}

/// Expected response for one image, computed through the same batched
/// kernels the engine uses, at batch size 1.
std::vector<float> direct_scores(const ModelBundle& bundle,
                                 const tensor::Tensor& image) {
  nn::InferencePlan& plan = const_cast<ModelBundle&>(bundle).plan;
  const tensor::Tensor flat = core::extract_one(plan, image);
  const hd::Hypervector query = bundle.nshd.symbolize(flat.data());
  const tensor::Tensor sims = bundle.nshd.classifier().similarities_all(
      {query}, bundle.nshd.config().similarity);
  return {sims.data(), sims.data() + sims.numel()};
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("nshd_serve_test_") + name + "_" +
           std::to_string(::getpid()) + ".ckpt"))
      .string();
}

TEST(ServeEngine, MaxBatchFlushBeatsDeadline) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 2000.0;  // never reached in this test
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::vector<std::future<Response>> futures(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  for (auto& future : futures) {
    const Response response = future.get();
    EXPECT_EQ(response.flush, FlushReason::kMaxBatch);
    EXPECT_EQ(response.batch_size, 4);
    // A full batch must not have waited for the 2 s deadline.
    EXPECT_LT(response.total_ms, 1500.0);
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.max_batch_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 0u);
}

TEST(ServeEngine, DeadlineFlushesPartialBatch) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 8;
  config.batch_deadline_ms = 30.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::future<Response> f0, f1;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &f0), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(1), &f1), SubmitStatus::kOk);
  const Response r0 = f0.get();
  const Response r1 = f1.get();
  EXPECT_EQ(r0.flush, FlushReason::kDeadline);
  EXPECT_EQ(r1.flush, FlushReason::kDeadline);
  EXPECT_EQ(r0.batch_size, 2);
  // The flush happened because the *deadline* expired, not instantly.
  EXPECT_GE(r0.total_ms, 25.0);
}

TEST(ServeEngine, MaxBatchThenDeadlineOrdering) {
  // 6 requests, max_batch 4: the first four flush as a full batch well
  // before the deadline; the remaining two ride the deadline flush.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 150.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::vector<std::future<Response>> futures(6);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  std::vector<Response> responses;
  responses.reserve(6);
  for (auto& future : futures) responses.push_back(future.get());

  int max_batch_count = 0, deadline_count = 0;
  for (const Response& response : responses) {
    if (response.flush == FlushReason::kMaxBatch) {
      EXPECT_EQ(response.batch_size, 4);
      ++max_batch_count;
    } else {
      EXPECT_EQ(response.flush, FlushReason::kDeadline);
      EXPECT_EQ(response.batch_size, 2);
      ++deadline_count;
    }
  }
  EXPECT_EQ(max_batch_count, 4);
  EXPECT_EQ(deadline_count, 2);
  // FIFO: the full batch carries the first four submissions.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].flush, FlushReason::kMaxBatch);
}

TEST(ServeEngine, QueueFullIsTypedRejection) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 8;               // queue never fills a batch...
  config.batch_deadline_ms = 500.0;   // ...and the deadline is far away
  config.queue_capacity = 2;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::future<Response> f0, f1, f2;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &f0), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(1), &f1), SubmitStatus::kOk);
  EXPECT_EQ(engine.submit("m", ds.sample(2), &f2), SubmitStatus::kQueueFull);
  EXPECT_EQ(engine.stats().rejected_full, 1u);

  // The two accepted requests still complete (deadline flush).
  EXPECT_EQ(f0.get().batch_size, 2);
  EXPECT_EQ(f1.get().batch_size, 2);
}

TEST(ServeEngine, BadShapeAndUnknownModelRejections) {
  EngineConfig config;
  config.workers = 1;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));

  std::future<Response> future;
  tensor::Tensor wrong(tensor::Shape{3, 16, 16});
  EXPECT_EQ(engine.submit("m", wrong, &future), SubmitStatus::kBadShape);
  tensor::Tensor right(tensor::Shape{3, 32, 32});
  EXPECT_EQ(engine.submit("nope", right, &future), SubmitStatus::kUnknownModel);
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected_shape, 1u);
  EXPECT_EQ(stats.rejected_unknown, 1u);
}

TEST(ServeEngine, ShutdownDrainsInFlightRequests) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 16;
  config.batch_deadline_ms = 10000.0;  // only a drain can flush these
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::vector<std::future<Response>> futures(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  engine.shutdown();
  for (auto& future : futures) {
    const Response response = future.get();  // must not hang or throw
    EXPECT_EQ(response.flush, FlushReason::kDrain);
    EXPECT_EQ(response.batch_size, 3);
  }
  EXPECT_EQ(engine.stats().completed, 3u);

  // After shutdown, submissions are rejected with a named status.
  std::future<Response> late;
  EXPECT_EQ(engine.submit("m", ds.sample(0), &late), SubmitStatus::kShutdown);
  EXPECT_EQ(engine.stats().rejected_shutdown, 1u);
}

TEST(ServeEngine, BatchedMatchesSingleBitwise) {
  // The parity contract: a response computed in a batch of 16 is bitwise
  // identical to the same request served alone.  Run the same 16 images
  // through a batching engine and a single-request engine and compare
  // scores exactly.
  const data::Dataset ds = tiny_dataset(4, 9);  // 16 samples

  EngineConfig batched_config;
  batched_config.workers = 2;
  batched_config.max_batch = 16;
  batched_config.batch_deadline_ms = 200.0;
  Engine batched(batched_config);
  batched.register_model("m", make_trained_bundle(batched_config.max_batch));

  EngineConfig single_config;
  single_config.workers = 2;
  single_config.max_batch = 1;  // every request is its own batch
  single_config.batch_deadline_ms = 200.0;
  Engine single(single_config);
  single.register_model("m", make_trained_bundle(single_config.max_batch));

  const ModelBundle* reference = batched.bundle("m");
  ASSERT_NE(reference, nullptr);

  std::vector<std::future<Response>> batched_futures(16), single_futures(16);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(batched.submit("m", ds.sample(i), &batched_futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
    ASSERT_EQ(single.submit("m", ds.sample(i), &single_futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  for (int i = 0; i < 16; ++i) {
    const Response from_batch = batched_futures[static_cast<std::size_t>(i)].get();
    const Response from_single = single_futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(from_batch.scores.size(), from_single.scores.size());
    for (std::size_t c = 0; c < from_batch.scores.size(); ++c) {
      // Bitwise, not approximate: the whole pipeline computes row i
      // independently of batch size.
      EXPECT_EQ(from_batch.scores[c], from_single.scores[c])
          << "sample " << i << " class " << c;
    }
    EXPECT_EQ(from_batch.predicted, from_single.predicted);

    // And both match the directly-computed single-sample pipeline.
    const std::vector<float> expected = direct_scores(*reference, ds.sample(i));
    ASSERT_EQ(from_batch.scores.size(), expected.size());
    for (std::size_t c = 0; c < expected.size(); ++c)
      EXPECT_EQ(from_batch.scores[c], expected[c]);
  }
  EXPECT_GE(batched.stats().batches, 1u);
  EXPECT_EQ(single.stats().batches, 16u);
}

TEST(ServeEngine, ConcurrentTrafficManyThreadsIsSafe) {
  // Hammer one engine from several submitter threads while workers batch
  // concurrently — the TSan target runs this to certify the queue, the
  // contended thread-pool path, and the shared plan lease pool together.
  EngineConfig config;
  config.workers = 3;
  config.max_batch = 8;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 24;
  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::future<Response> future;
        const std::int64_t sample = (t * kPerThread + i) % ds.size();
        if (engine.submit("m", ds.sample(sample), &future) == SubmitStatus::kOk) {
          const Response response = future.get();
          EXPECT_GE(response.predicted, 0);
          EXPECT_LT(response.predicted, kClasses);
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(accepted.load(), kSubmitters * kPerThread);  // capacity 256 never fills
  EXPECT_EQ(engine.stats().completed,
            static_cast<std::uint64_t>(kSubmitters * kPerThread));
}

TEST(ServeEngine, LiveReloadSwapsWeightsMidTraffic) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);

  // Bundle A serves; bundle B (different training data) provides the
  // checkpoint we hot-swap in.
  engine.register_model("m", make_trained_bundle(config.max_batch, /*model_seed=*/7));
  auto donor = make_trained_bundle(config.max_batch, /*model_seed=*/7);
  {
    // Make the donor genuinely different: retrain on a reshuffled set.
    const data::Dataset alt = tiny_dataset(8, 77);
    const core::ExtractedFeatures features =
        core::extract_features(donor->plan, alt, config.max_batch);
    donor->nshd.train(features, alt.labels, nullptr);
  }
  const std::string path = temp_path("reload");
  ASSERT_TRUE(serve::save_bundle_checkpoint(donor->nshd, "m", path));

  const data::Dataset ds = tiny_dataset(4, 9);
  const tensor::Tensor probe = ds.sample(0);
  const std::vector<float> before = direct_scores(*engine.bundle("m"), probe);
  const std::vector<float> expected_after = direct_scores(*donor, probe);
  ASSERT_NE(before, expected_after);

  // Keep traffic flowing while the reload happens.
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int i = 0;
    while (!stop.load()) {
      std::future<Response> future;
      if (engine.submit("m", ds.sample(i++ % ds.size()), &future) == SubmitStatus::kOk)
        (void)future.get();
    }
  });
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kOk);
  stop.store(true);
  traffic.join();

  // Post-reload responses use the donor's weights.  The served scores must
  // be bitwise identical to the direct pipeline on the *reloaded* model and
  // match the donor's own scores to float accuracy (reload recomputes the
  // cosine norm cache from the bank, while the donor maintained its norms
  // incrementally during training — identical up to rounding).
  std::future<Response> future;
  ASSERT_EQ(engine.submit("m", probe, &future), SubmitStatus::kOk);
  const Response response = future.get();
  const std::vector<float> after = direct_scores(*engine.bundle("m"), probe);
  ASSERT_EQ(response.scores.size(), after.size());
  for (std::size_t c = 0; c < after.size(); ++c) {
    EXPECT_EQ(response.scores[c], after[c]);
    EXPECT_NEAR(response.scores[c], expected_after[c], 1e-4f);
    EXPECT_NE(response.scores[c], before[c]);
  }
  EXPECT_EQ(engine.stats().reloads_ok, 1u);
  std::filesystem::remove(path);
}

TEST(ServeEngine, CorruptReloadIsRejectedAndOldWeightsServe) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);
  const tensor::Tensor probe = ds.sample(0);
  const std::vector<float> before = direct_scores(*engine.bundle("m"), probe);

  const std::string path = temp_path("corrupt");
  util::fault::disarm_all();

  // Bit rot: the reused checkpoint.bit_flip site corrupts the payload on
  // write; reload must name the corruption and keep the old weights.
  util::fault::arm("checkpoint.bit_flip");
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::disarm_all();
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kBadChecksum);

  // Torn write: commit marker missing.
  util::fault::arm("checkpoint.torn_write");
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::disarm_all();
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kTruncated);

  // Short read on an intact file.
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::arm("checkpoint.short_read");
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kTruncated);
  util::fault::disarm_all();

  // Wrong identity: a checkpoint written for another model id.
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "other", path));
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kShapeMismatch);

  // Missing file and unknown model.
  EXPECT_EQ(engine.reload("m", path + ".does-not-exist"), util::LoadStatus::kNotFound);
  EXPECT_EQ(engine.reload("ghost", path), util::LoadStatus::kNotFound);

  EXPECT_EQ(engine.stats().reloads_failed, 6u);
  EXPECT_EQ(engine.stats().reloads_ok, 0u);

  // Through all of it the old weights kept serving, bit-for-bit.
  std::future<Response> future;
  ASSERT_EQ(engine.submit("m", probe, &future), SubmitStatus::kOk);
  const Response response = future.get();
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(response.scores[c], before[c]);
  std::filesystem::remove(path);
}

/// A degradation head for NumericPolicy::kDegrade: manifold-free NSHD over
/// the same zoo/cut, trained on the same tiny set.
std::unique_ptr<core::NshdModel> make_fallback_for(ModelBundle& bundle) {
  core::NshdConfig config = tiny_nshd_config();
  config.use_manifold = false;
  auto fallback = std::make_unique<core::NshdModel>(bundle.zoo, kCut, config);
  const data::Dataset train = tiny_dataset();
  const core::ExtractedFeatures features =
      core::extract_features(bundle.plan, train, /*batch_size=*/4);
  fallback->train(features, train.labels, /*teacher_logits=*/nullptr);
  return fallback;
}

/// Expected kDegraded response: raw cut features through the fallback head.
std::vector<float> direct_fallback_scores(const ModelBundle& bundle,
                                          const tensor::Tensor& image) {
  nn::InferencePlan& plan = const_cast<ModelBundle&>(bundle).plan;
  const tensor::Tensor flat = core::extract_one(plan, image);
  const hd::Hypervector query = bundle.fallback->symbolize(flat.data());
  const tensor::Tensor sims = bundle.fallback->classifier().similarities_all(
      {query}, bundle.fallback->config().similarity);
  return {sims.data(), sims.data() + sims.numel()};
}

TEST(ServeEngine, RequestDeadlineExpiresQueuedRequestTyped) {
  // Worker is busy with request X when Y arrives with a microscopic budget;
  // by the time Y's batch forms its deadline has passed, so it completes
  // kTimedOut instead of running dead work.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 1;  // X and Y can never share a batch
  config.batch_deadline_ms = 0.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::future<Response> fx, fy;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &fx), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(1), &fy, /*deadline_ms=*/0.001),
            SubmitStatus::kOk);
  const Response rx = fx.get();
  const Response ry = fy.get();
  EXPECT_EQ(rx.status, serve::RequestStatus::kOk);
  EXPECT_EQ(ry.status, serve::RequestStatus::kTimedOut);
  EXPECT_EQ(ry.predicted, -1);
  EXPECT_TRUE(ry.scores.empty());

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.timed_out);
}

TEST(ServeEngine, AdmissionControlShedsPredictedDeadlineMiss) {
  // Every batch stalls 25 ms; once the EWMA has learned that, a request
  // with a 5 ms budget behind a deep backlog is shed at submit() — typed
  // kOverloaded, not a slow kTimedOut after wasted compute.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.batch_deadline_ms = 0.0;
  config.queue_capacity = 64;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);
  util::fault::disarm_all();
  util::fault::arm_every("serve.batch_stall");

  // Teach the EWMA how slow batches are.
  std::future<Response> warm;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &warm), SubmitStatus::kOk);
  EXPECT_EQ(warm.get().status, serve::RequestStatus::kOk);

  // Deadline-free fillers build a backlog the worker drains at 25 ms each.
  std::vector<std::future<Response>> fillers(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i % 4), &fillers[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  std::future<Response> doomed;
  EXPECT_EQ(engine.submit("m", ds.sample(0), &doomed, /*deadline_ms=*/5.0),
            SubmitStatus::kOverloaded);
  EXPECT_EQ(engine.stats().rejected_overload, 1u);

  // Shedding protected the fillers: every accepted request still completes.
  for (auto& future : fillers)
    EXPECT_EQ(future.get().status, serve::RequestStatus::kOk);
  util::fault::disarm_all();
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 9u);
  EXPECT_GT(stats.batches, 0u);
}

TEST(ServeEngine, NonFiniteInputFeaturesAreQuarantinedTyped) {
  // One NaN pixel survives the cut CNN (ReLU6 propagates NaN) and would be
  // silently absorbed by the bipolar sign quantization; the numeric-health
  // scan catches it at the encoder input and quarantines exactly that row,
  // leaving co-batched requests bitwise intact.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 500.0;
  config.numeric_policy = serve::NumericPolicy::kReject;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  tensor::Tensor poison = ds.sample(1);
  poison.data()[7] = std::numeric_limits<float>::quiet_NaN();

  std::vector<std::future<Response>> futures(4);
  ASSERT_EQ(engine.submit("m", ds.sample(0), &futures[0]), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", poison, &futures[1]), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(2), &futures[2]), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(3), &futures[3]), SubmitStatus::kOk);

  const Response bad = futures[1].get();
  EXPECT_EQ(bad.status, serve::RequestStatus::kInternalError);
  EXPECT_EQ(bad.predicted, -1);
  for (const int i : {0, 2, 3}) {
    const Response good = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(good.status, serve::RequestStatus::kOk);
    const std::vector<float> expected =
        direct_scores(*engine.bundle("m"), ds.sample(i));
    ASSERT_EQ(good.scores.size(), expected.size());
    for (std::size_t c = 0; c < expected.size(); ++c)
      EXPECT_EQ(good.scores[c], expected[c]);
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.numeric_faults, 1u);
  EXPECT_EQ(stats.internal_errors, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(ServeEngine, DegradePolicyServesHdFallbackOnPrimaryFault) {
  // serve.nan_logits poisons the primary similarity row of the first
  // request; under kDegrade with an attached HD-only fallback head that
  // request is served kDegraded — bitwise equal to the fallback pipeline —
  // while clean rows stay on the primary, and a request whose *input*
  // features are poisoned is still rejected (no honest answer exists).
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 500.0;
  config.numeric_policy = serve::NumericPolicy::kDegrade;
  Engine engine(config);
  auto bundle = make_trained_bundle(config.max_batch);
  bundle->fallback = make_fallback_for(*bundle);
  engine.register_model("m", std::move(bundle));
  const data::Dataset ds = tiny_dataset(2, 5);
  util::fault::disarm_all();
  util::fault::arm("serve.nan_logits", 1);

  std::vector<std::future<Response>> futures(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  const Response degraded = futures[0].get();
  EXPECT_EQ(degraded.status, serve::RequestStatus::kDegraded);
  const std::vector<float> expected_fallback =
      direct_fallback_scores(*engine.bundle("m"), ds.sample(0));
  ASSERT_EQ(degraded.scores.size(), expected_fallback.size());
  for (std::size_t c = 0; c < expected_fallback.size(); ++c)
    EXPECT_EQ(degraded.scores[c], expected_fallback[c]);

  for (int i = 1; i < 4; ++i) {
    const Response good = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(good.status, serve::RequestStatus::kOk);
    const std::vector<float> expected =
        direct_scores(*engine.bundle("m"), ds.sample(i));
    for (std::size_t c = 0; c < expected.size(); ++c)
      EXPECT_EQ(good.scores[c], expected[c]);
  }
  util::fault::disarm_all();

  // Poison input under kDegrade: still kInternalError, never a degraded lie.
  tensor::Tensor poison = ds.sample(0);
  poison.data()[0] = std::numeric_limits<float>::quiet_NaN();
  std::future<Response> doomed;
  ASSERT_EQ(engine.submit("m", poison, &doomed), SubmitStatus::kOk);
  EXPECT_EQ(doomed.get().status, serve::RequestStatus::kInternalError);

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.completed, 4u);  // 3 kOk + 1 kDegraded
  EXPECT_EQ(stats.internal_errors, 1u);
  EXPECT_EQ(stats.numeric_faults, 2u);
}

TEST(ServeEngine, TransientWorkerThrowIsContainedAndRetried) {
  // The first batch execution throws; bisection re-runs both halves, the
  // fault does not recur, and every request completes kOk — with the same
  // bitwise scores the healthy path produces — after exactly one retry.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 500.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);
  util::fault::disarm_all();
  util::fault::arm("serve.worker_throw", 1);

  std::vector<std::future<Response>> futures(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  for (int i = 0; i < 4; ++i) {
    const Response response = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(response.status, serve::RequestStatus::kOk);
    EXPECT_EQ(response.retries, 1);
    const std::vector<float> expected =
        direct_scores(*engine.bundle("m"), ds.sample(i));
    for (std::size_t c = 0; c < expected.size(); ++c)
      EXPECT_EQ(response.scores[c], expected[c]);
  }
  util::fault::disarm_all();
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.batch_faults, 1u);
  EXPECT_EQ(stats.retried, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.internal_errors, 0u);
}

TEST(ServeEngine, PermanentWorkerThrowQuarantinesEveryRequestAndRecovers) {
  // Every execution throws: bisection drills down to singletons and each
  // request is quarantined with kInternalError — the worker thread never
  // dies, no promise is lost, and once the fault clears the engine serves
  // bitwise-correct responses again.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 500.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);
  util::fault::disarm_all();
  util::fault::arm_every("serve.worker_throw");

  std::vector<std::future<Response>> futures(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  for (auto& future : futures) {
    const Response response = future.get();
    EXPECT_EQ(response.status, serve::RequestStatus::kInternalError);
    EXPECT_EQ(response.predicted, -1);
  }
  serve::EngineStats stats = engine.stats();
  // 1 full batch + 2 halves + 4 singletons all threw.
  EXPECT_EQ(stats.batch_faults, 7u);
  EXPECT_EQ(stats.internal_errors, 4u);
  EXPECT_GE(stats.retried, 4u);

  util::fault::disarm_all();
  std::future<Response> healthy;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &healthy), SubmitStatus::kOk);
  const Response response = healthy.get();
  EXPECT_EQ(response.status, serve::RequestStatus::kOk);
  const std::vector<float> expected =
      direct_scores(*engine.bundle("m"), ds.sample(0));
  for (std::size_t c = 0; c < expected.size(); ++c)
    EXPECT_EQ(response.scores[c], expected[c]);
  stats = engine.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.timed_out + stats.internal_errors);
}

TEST(ServeEngine, NonFiniteCheckpointReloadIsRejectedTyped) {
  // A checkpoint can pass every CRC and still carry NaN weights; reload
  // must reject it as kNonFinite before the writer lock, keeping the old
  // weights serving bit-for-bit.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);
  const tensor::Tensor probe = ds.sample(0);
  const std::vector<float> before = direct_scores(*engine.bundle("m"), probe);
  const std::string path = temp_path("nonfinite");
  util::fault::disarm_all();

  // A structurally-valid checkpoint whose state blob carries one NaN.
  util::Checkpoint poisoned;
  poisoned.key = "m";
  util::CheckpointTensor state;
  state.values = engine.bundle("m")->nshd.save_state();
  state.values[state.values.size() / 3] = std::numeric_limits<float>::quiet_NaN();
  state.dims = {static_cast<std::int64_t>(state.values.size())};
  poisoned.tensors.push_back(std::move(state));
  ASSERT_TRUE(util::write_checkpoint_file(path, poisoned));
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kNonFinite);

  // serve.reload_corrupt models the same corruption appearing in memory on
  // an intact file: same typed rejection.
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::arm("serve.reload_corrupt", 1);
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kNonFinite);
  util::fault::disarm_all();
  EXPECT_EQ(engine.stats().reloads_failed, 2u);

  // Old weights kept serving; the intact file now loads cleanly.
  std::future<Response> future;
  ASSERT_EQ(engine.submit("m", probe, &future), SubmitStatus::kOk);
  const Response response = future.get();
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(response.scores[c], before[c]);
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kOk);
  EXPECT_EQ(engine.stats().reloads_ok, 1u);
  std::filesystem::remove(path);
}

TEST(ServeEngine, RegisterRejectsNonFiniteOrMismatchedBundles) {
  EngineConfig config;
  config.workers = 1;
  Engine engine(config);

  // Non-finite primary weights: rejected on the caller's thread, before any
  // worker can touch the bundle.
  auto poisoned = make_trained_bundle(config.max_batch);
  std::vector<float> blob = poisoned->nshd.save_state();
  blob[blob.size() / 2] = std::numeric_limits<float>::infinity();
  ASSERT_TRUE(poisoned->nshd.load_state(blob));
  EXPECT_THROW(engine.register_model("bad", std::move(poisoned)),
               std::invalid_argument);

  // A fallback that still uses a manifold is not a raw-feature head.
  auto wrong_fallback = make_trained_bundle(config.max_batch);
  wrong_fallback->fallback =
      std::make_unique<core::NshdModel>(wrong_fallback->zoo, kCut, tiny_nshd_config());
  EXPECT_THROW(engine.register_model("worse", std::move(wrong_fallback)),
               std::invalid_argument);

  // A healthy bundle with a healthy fallback registers fine.
  auto healthy = make_trained_bundle(config.max_batch);
  healthy->fallback = make_fallback_for(*healthy);
  engine.register_model("ok", std::move(healthy));
  EXPECT_NE(engine.bundle("ok"), nullptr);
}

TEST(ServeEngine, MultiModelRoutingAndIsolation) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("a", make_trained_bundle(config.max_batch, /*model_seed=*/7));
  engine.register_model("b", make_trained_bundle(config.max_batch, /*model_seed=*/13));
  EXPECT_THROW(engine.register_model("a", make_trained_bundle(1)), std::invalid_argument);

  const data::Dataset ds = tiny_dataset(4, 9);
  const std::vector<float> expect_a = direct_scores(*engine.bundle("a"), ds.sample(0));
  const std::vector<float> expect_b = direct_scores(*engine.bundle("b"), ds.sample(0));

  std::future<Response> fa, fb;
  ASSERT_EQ(engine.submit("a", ds.sample(0), &fa), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("b", ds.sample(0), &fb), SubmitStatus::kOk);
  const Response ra = fa.get();
  const Response rb = fb.get();
  for (std::size_t c = 0; c < expect_a.size(); ++c) {
    EXPECT_EQ(ra.scores[c], expect_a[c]);
    EXPECT_EQ(rb.scores[c], expect_b[c]);
  }
}

}  // namespace
}  // namespace nshd
