// Tests for the serving engine: dynamic batch formation (deadline vs
// max-batch flush), typed rejection (queue-full / bad-shape / unknown /
// shutdown), shutdown drain semantics, checkpoint live-reload mid-traffic
// (including the fault-injected corruption matrix), and bitwise parity of
// batched responses against the single-request pipeline.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "serve/engine.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace nshd {
namespace {

using serve::Engine;
using serve::EngineConfig;
using serve::FlushReason;
using serve::ModelBundle;
using serve::Response;
using serve::SubmitStatus;

constexpr std::int64_t kClasses = 4;
constexpr std::size_t kCut = 4;

data::Dataset tiny_dataset(std::int64_t per_class = 8, std::uint64_t seed = 42) {
  data::SynthCifarConfig config;
  config.num_classes = kClasses;
  config.samples_per_class = per_class;
  config.seed = seed;
  return data::make_synth_cifar(config);
}

core::NshdConfig tiny_nshd_config() {
  core::NshdConfig config;
  config.dim = 512;
  config.manifold_features = 32;
  config.epochs = 2;
  config.use_kd = false;
  config.train_manifold = false;
  return config;
}

/// A small trained bundle: mobilenetv2s cut 4, MASS-trained (no KD) on a
/// tiny synthetic set so class scores are non-degenerate.
std::unique_ptr<ModelBundle> make_trained_bundle(std::int64_t max_batch,
                                                 std::uint64_t model_seed = 7) {
  auto bundle = std::make_unique<ModelBundle>(
      models::make_model("mobilenetv2s", kClasses, model_seed), kCut,
      tiny_nshd_config(), max_batch);
  const data::Dataset train = tiny_dataset();
  const core::ExtractedFeatures features =
      core::extract_features(bundle->plan, train, max_batch);
  bundle->nshd.train(features, train.labels, /*teacher_logits=*/nullptr);
  return bundle;
}

/// Expected response for one image, computed through the same batched
/// kernels the engine uses, at batch size 1.
std::vector<float> direct_scores(const ModelBundle& bundle,
                                 const tensor::Tensor& image) {
  nn::InferencePlan& plan = const_cast<ModelBundle&>(bundle).plan;
  const tensor::Tensor flat = core::extract_one(plan, image);
  const hd::Hypervector query = bundle.nshd.symbolize(flat.data());
  const tensor::Tensor sims = bundle.nshd.classifier().similarities_all(
      {query}, bundle.nshd.config().similarity);
  return {sims.data(), sims.data() + sims.numel()};
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("nshd_serve_test_") + name + "_" +
           std::to_string(::getpid()) + ".ckpt"))
      .string();
}

TEST(ServeEngine, MaxBatchFlushBeatsDeadline) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 2000.0;  // never reached in this test
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::vector<std::future<Response>> futures(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  for (auto& future : futures) {
    const Response response = future.get();
    EXPECT_EQ(response.flush, FlushReason::kMaxBatch);
    EXPECT_EQ(response.batch_size, 4);
    // A full batch must not have waited for the 2 s deadline.
    EXPECT_LT(response.total_ms, 1500.0);
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.max_batch_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 0u);
}

TEST(ServeEngine, DeadlineFlushesPartialBatch) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 8;
  config.batch_deadline_ms = 30.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::future<Response> f0, f1;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &f0), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(1), &f1), SubmitStatus::kOk);
  const Response r0 = f0.get();
  const Response r1 = f1.get();
  EXPECT_EQ(r0.flush, FlushReason::kDeadline);
  EXPECT_EQ(r1.flush, FlushReason::kDeadline);
  EXPECT_EQ(r0.batch_size, 2);
  // The flush happened because the *deadline* expired, not instantly.
  EXPECT_GE(r0.total_ms, 25.0);
}

TEST(ServeEngine, MaxBatchThenDeadlineOrdering) {
  // 6 requests, max_batch 4: the first four flush as a full batch well
  // before the deadline; the remaining two ride the deadline flush.
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 150.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::vector<std::future<Response>> futures(6);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  std::vector<Response> responses;
  responses.reserve(6);
  for (auto& future : futures) responses.push_back(future.get());

  int max_batch_count = 0, deadline_count = 0;
  for (const Response& response : responses) {
    if (response.flush == FlushReason::kMaxBatch) {
      EXPECT_EQ(response.batch_size, 4);
      ++max_batch_count;
    } else {
      EXPECT_EQ(response.flush, FlushReason::kDeadline);
      EXPECT_EQ(response.batch_size, 2);
      ++deadline_count;
    }
  }
  EXPECT_EQ(max_batch_count, 4);
  EXPECT_EQ(deadline_count, 2);
  // FIFO: the full batch carries the first four submissions.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].flush, FlushReason::kMaxBatch);
}

TEST(ServeEngine, QueueFullIsTypedRejection) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 8;               // queue never fills a batch...
  config.batch_deadline_ms = 500.0;   // ...and the deadline is far away
  config.queue_capacity = 2;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::future<Response> f0, f1, f2;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &f0), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("m", ds.sample(1), &f1), SubmitStatus::kOk);
  EXPECT_EQ(engine.submit("m", ds.sample(2), &f2), SubmitStatus::kQueueFull);
  EXPECT_EQ(engine.stats().rejected_full, 1u);

  // The two accepted requests still complete (deadline flush).
  EXPECT_EQ(f0.get().batch_size, 2);
  EXPECT_EQ(f1.get().batch_size, 2);
}

TEST(ServeEngine, BadShapeAndUnknownModelRejections) {
  EngineConfig config;
  config.workers = 1;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));

  std::future<Response> future;
  tensor::Tensor wrong(tensor::Shape{3, 16, 16});
  EXPECT_EQ(engine.submit("m", wrong, &future), SubmitStatus::kBadShape);
  tensor::Tensor right(tensor::Shape{3, 32, 32});
  EXPECT_EQ(engine.submit("nope", right, &future), SubmitStatus::kUnknownModel);
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected_shape, 1u);
  EXPECT_EQ(stats.rejected_unknown, 1u);
}

TEST(ServeEngine, ShutdownDrainsInFlightRequests) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 16;
  config.batch_deadline_ms = 10000.0;  // only a drain can flush these
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);

  std::vector<std::future<Response>> futures(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(engine.submit("m", ds.sample(i), &futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  engine.shutdown();
  for (auto& future : futures) {
    const Response response = future.get();  // must not hang or throw
    EXPECT_EQ(response.flush, FlushReason::kDrain);
    EXPECT_EQ(response.batch_size, 3);
  }
  EXPECT_EQ(engine.stats().completed, 3u);

  // After shutdown, submissions are rejected with a named status.
  std::future<Response> late;
  EXPECT_EQ(engine.submit("m", ds.sample(0), &late), SubmitStatus::kShutdown);
  EXPECT_EQ(engine.stats().rejected_shutdown, 1u);
}

TEST(ServeEngine, BatchedMatchesSingleBitwise) {
  // The parity contract: a response computed in a batch of 16 is bitwise
  // identical to the same request served alone.  Run the same 16 images
  // through a batching engine and a single-request engine and compare
  // scores exactly.
  const data::Dataset ds = tiny_dataset(4, 9);  // 16 samples

  EngineConfig batched_config;
  batched_config.workers = 2;
  batched_config.max_batch = 16;
  batched_config.batch_deadline_ms = 200.0;
  Engine batched(batched_config);
  batched.register_model("m", make_trained_bundle(batched_config.max_batch));

  EngineConfig single_config;
  single_config.workers = 2;
  single_config.max_batch = 1;  // every request is its own batch
  single_config.batch_deadline_ms = 200.0;
  Engine single(single_config);
  single.register_model("m", make_trained_bundle(single_config.max_batch));

  const ModelBundle* reference = batched.bundle("m");
  ASSERT_NE(reference, nullptr);

  std::vector<std::future<Response>> batched_futures(16), single_futures(16);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(batched.submit("m", ds.sample(i), &batched_futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
    ASSERT_EQ(single.submit("m", ds.sample(i), &single_futures[static_cast<std::size_t>(i)]),
              SubmitStatus::kOk);
  }
  for (int i = 0; i < 16; ++i) {
    const Response from_batch = batched_futures[static_cast<std::size_t>(i)].get();
    const Response from_single = single_futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(from_batch.scores.size(), from_single.scores.size());
    for (std::size_t c = 0; c < from_batch.scores.size(); ++c) {
      // Bitwise, not approximate: the whole pipeline computes row i
      // independently of batch size.
      EXPECT_EQ(from_batch.scores[c], from_single.scores[c])
          << "sample " << i << " class " << c;
    }
    EXPECT_EQ(from_batch.predicted, from_single.predicted);

    // And both match the directly-computed single-sample pipeline.
    const std::vector<float> expected = direct_scores(*reference, ds.sample(i));
    ASSERT_EQ(from_batch.scores.size(), expected.size());
    for (std::size_t c = 0; c < expected.size(); ++c)
      EXPECT_EQ(from_batch.scores[c], expected[c]);
  }
  EXPECT_GE(batched.stats().batches, 1u);
  EXPECT_EQ(single.stats().batches, 16u);
}

TEST(ServeEngine, ConcurrentTrafficManyThreadsIsSafe) {
  // Hammer one engine from several submitter threads while workers batch
  // concurrently — the TSan target runs this to certify the queue, the
  // contended thread-pool path, and the shared plan lease pool together.
  EngineConfig config;
  config.workers = 3;
  config.max_batch = 8;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 24;
  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::future<Response> future;
        const std::int64_t sample = (t * kPerThread + i) % ds.size();
        if (engine.submit("m", ds.sample(sample), &future) == SubmitStatus::kOk) {
          const Response response = future.get();
          EXPECT_GE(response.predicted, 0);
          EXPECT_LT(response.predicted, kClasses);
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(accepted.load(), kSubmitters * kPerThread);  // capacity 256 never fills
  EXPECT_EQ(engine.stats().completed,
            static_cast<std::uint64_t>(kSubmitters * kPerThread));
}

TEST(ServeEngine, LiveReloadSwapsWeightsMidTraffic) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);

  // Bundle A serves; bundle B (different training data) provides the
  // checkpoint we hot-swap in.
  engine.register_model("m", make_trained_bundle(config.max_batch, /*model_seed=*/7));
  auto donor = make_trained_bundle(config.max_batch, /*model_seed=*/7);
  {
    // Make the donor genuinely different: retrain on a reshuffled set.
    const data::Dataset alt = tiny_dataset(8, 77);
    const core::ExtractedFeatures features =
        core::extract_features(donor->plan, alt, config.max_batch);
    donor->nshd.train(features, alt.labels, nullptr);
  }
  const std::string path = temp_path("reload");
  ASSERT_TRUE(serve::save_bundle_checkpoint(donor->nshd, "m", path));

  const data::Dataset ds = tiny_dataset(4, 9);
  const tensor::Tensor probe = ds.sample(0);
  const std::vector<float> before = direct_scores(*engine.bundle("m"), probe);
  const std::vector<float> expected_after = direct_scores(*donor, probe);
  ASSERT_NE(before, expected_after);

  // Keep traffic flowing while the reload happens.
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int i = 0;
    while (!stop.load()) {
      std::future<Response> future;
      if (engine.submit("m", ds.sample(i++ % ds.size()), &future) == SubmitStatus::kOk)
        (void)future.get();
    }
  });
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kOk);
  stop.store(true);
  traffic.join();

  // Post-reload responses use the donor's weights.  The served scores must
  // be bitwise identical to the direct pipeline on the *reloaded* model and
  // match the donor's own scores to float accuracy (reload recomputes the
  // cosine norm cache from the bank, while the donor maintained its norms
  // incrementally during training — identical up to rounding).
  std::future<Response> future;
  ASSERT_EQ(engine.submit("m", probe, &future), SubmitStatus::kOk);
  const Response response = future.get();
  const std::vector<float> after = direct_scores(*engine.bundle("m"), probe);
  ASSERT_EQ(response.scores.size(), after.size());
  for (std::size_t c = 0; c < after.size(); ++c) {
    EXPECT_EQ(response.scores[c], after[c]);
    EXPECT_NEAR(response.scores[c], expected_after[c], 1e-4f);
    EXPECT_NE(response.scores[c], before[c]);
  }
  EXPECT_EQ(engine.stats().reloads_ok, 1u);
  std::filesystem::remove(path);
}

TEST(ServeEngine, CorruptReloadIsRejectedAndOldWeightsServe) {
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(2, 5);
  const tensor::Tensor probe = ds.sample(0);
  const std::vector<float> before = direct_scores(*engine.bundle("m"), probe);

  const std::string path = temp_path("corrupt");
  util::fault::disarm_all();

  // Bit rot: the reused checkpoint.bit_flip site corrupts the payload on
  // write; reload must name the corruption and keep the old weights.
  util::fault::arm("checkpoint.bit_flip");
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::disarm_all();
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kBadChecksum);

  // Torn write: commit marker missing.
  util::fault::arm("checkpoint.torn_write");
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::disarm_all();
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kTruncated);

  // Short read on an intact file.
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));
  util::fault::arm("checkpoint.short_read");
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kTruncated);
  util::fault::disarm_all();

  // Wrong identity: a checkpoint written for another model id.
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "other", path));
  EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kShapeMismatch);

  // Missing file and unknown model.
  EXPECT_EQ(engine.reload("m", path + ".does-not-exist"), util::LoadStatus::kNotFound);
  EXPECT_EQ(engine.reload("ghost", path), util::LoadStatus::kNotFound);

  EXPECT_EQ(engine.stats().reloads_failed, 6u);
  EXPECT_EQ(engine.stats().reloads_ok, 0u);

  // Through all of it the old weights kept serving, bit-for-bit.
  std::future<Response> future;
  ASSERT_EQ(engine.submit("m", probe, &future), SubmitStatus::kOk);
  const Response response = future.get();
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(response.scores[c], before[c]);
  std::filesystem::remove(path);
}

TEST(ServeEngine, MultiModelRoutingAndIsolation) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("a", make_trained_bundle(config.max_batch, /*model_seed=*/7));
  engine.register_model("b", make_trained_bundle(config.max_batch, /*model_seed=*/13));
  EXPECT_THROW(engine.register_model("a", make_trained_bundle(1)), std::invalid_argument);

  const data::Dataset ds = tiny_dataset(4, 9);
  const std::vector<float> expect_a = direct_scores(*engine.bundle("a"), ds.sample(0));
  const std::vector<float> expect_b = direct_scores(*engine.bundle("b"), ds.sample(0));

  std::future<Response> fa, fb;
  ASSERT_EQ(engine.submit("a", ds.sample(0), &fa), SubmitStatus::kOk);
  ASSERT_EQ(engine.submit("b", ds.sample(0), &fb), SubmitStatus::kOk);
  const Response ra = fa.get();
  const Response rb = fb.get();
  for (std::size_t c = 0; c < expect_a.size(); ++c) {
    EXPECT_EQ(ra.scores[c], expect_a[c]);
    EXPECT_EQ(rb.scores[c], expect_b[c]);
  }
}

}  // namespace
}  // namespace nshd
