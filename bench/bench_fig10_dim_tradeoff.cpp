// Fig. 10 — Efficiency and Accuracy Tradeoff on FPGA over hypervector
// dimensionality.
//
// For D in {500, 1K, 3K, 10K}: NSHD test accuracy, modeled FPGA throughput,
// and the HD-stage parameter reduction relative to D=10K.
//
// Paper shape: D >= 3000 matches the CNN-level plateau, D = 1000 loses only
// ~1.64% on average while cutting HD parameters by a further 20% (3K is
// already 70% smaller than 10K).
//
// Each row also evaluates the trained head on int8-extracted features
// (the deployment configuration the FPGA throughput column models); a top-1
// drop beyond --max_drop_pp (default 1.0) percentage points is FATAL.
#include "bench_common.hpp"
#include "hw/census.hpp"
#include "hw/fpga.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::string name = args.get("model", "efficientnet_b0s");
  const double max_drop_pp = args.get_double("max_drop_pp", 1.0);

  core::ExperimentContext context(bench::config_from_args(args));
  models::ZooModel& m = context.model(name);
  const auto cut = static_cast<std::size_t>(
      args.get_int("cut", static_cast<int>(m.paper_cut_layers.back())));
  const double cnn_acc = context.cnn_test_accuracy(name);
  const hw::FpgaModel fpga;

  const std::vector<std::int64_t> dims = {500, 1000, 3000, 10000};

  // HD-stage parameters (projection bits as bytes + class vectors) at 10K
  // for the reduction column.
  auto hd_params = [&](std::int64_t dim) {
    const hw::NshdCensus census =
        hw::nshd_census(m, cut, dim, 100, context.num_classes());
    return static_cast<double>(census.projection_bits) / 8.0 +
           static_cast<double>(census.class_params) * 4.0;
  };
  const double params_10k = hd_params(10000);

  util::Table table({"D", "NSHD acc", "int8 acc", "vs CNN", "FPGA FPS",
                     "HD params vs 10K"});
  bool gate_failed = false;
  for (std::int64_t dim : dims) {
    core::NshdConfig config;
    config.dim = dim;
    const auto run = context.run_nshd(name, cut, config, /*with_quantized=*/true);
    if (!run.failed) {
      const double drop_pp =
          (run.test_accuracy - run.quantized_test_accuracy) * 100.0;
      if (drop_pp > max_drop_pp) {
        std::fprintf(stderr,
                     "FATAL: D=%lld int8 top-1 drop %.2fpp exceeds %.2fpp\n",
                     static_cast<long long>(dim), drop_pp, max_drop_pp);
        gate_failed = true;
      }
    }
    const double fps = fpga.nshd_fps(
        hw::nshd_census(m, cut, dim, 100, context.num_classes()), cut + 1);
    table.add_row({util::cell(static_cast<int>(dim)),
                   bench::run_cell(run),
                   run.failed ? "FAILED"
                              : util::cell(run.quantized_test_accuracy, 4),
                   run.failed
                       ? "n/a"
                       : util::cell((run.test_accuracy - cnn_acc) * 100.0, 2) + "pp",
                   util::cell(fps, 0),
                   util::cell((1.0 - hd_params(dim) / params_10k) * 100.0, 1) + "%"});
  }
  bench::emit("Fig. 10: dimensionality tradeoff, " + models::display_name(name) +
                  " layer " + std::to_string(cut),
              table);
  std::printf("CNN reference accuracy: %.4f. Shape check: accuracy plateaus "
              "by D=3000, D=1000 drops slightly, throughput and parameter "
              "savings rise as D falls; int8 within %.1fpp of f32 at every D.\n",
              cnn_acc, max_drop_pp);
  return gate_failed ? 1 : 0;
}
