// Fig. 11 — Explainability of HD computing with t-SNE analysis.
//
// Embeds the sample hypervectors of the test set in 2-D with t-SNE (i) at
// the first training iteration and (ii) after the final iteration, and
// quantifies the visual claim of the paper — "vague pattern" vs "tight
// class clusters" — with silhouette and inter/intra separation scores.
// The raw 2-D embeddings are written as CSV for plotting.
#include <fstream>

#include "analysis/tsne.hpp"
#include "bench_common.hpp"

namespace {
void dump_csv(const std::string& path, const nshd::tensor::Tensor& points,
              const std::vector<std::int64_t>& labels) {
  std::ofstream out(path);
  out << "x,y,label\n";
  for (std::int64_t i = 0; i < points.shape()[0]; ++i) {
    out << points.at(i, 0) << ',' << points.at(i, 1) << ','
        << labels[static_cast<std::size_t>(i)] << '\n';
  }
}
}  // namespace

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::string name = args.get("model", "efficientnet_b0s");
  const std::int64_t dim = args.get_int("dim", 3000);

  core::ExperimentContext context(bench::config_from_args(args));
  models::ZooModel& m = context.model(name);
  const auto cut = static_cast<std::size_t>(args.get_int("cut", 7));

  const core::ExtractedFeatures& train_feats = context.train_features(name, cut);
  const core::ExtractedFeatures& test_feats = context.test_features(name, cut);
  const tensor::Tensor& teacher_logits = context.teacher_train_logits(name);

  // Iteration 1: one training epoch only.
  core::NshdConfig first_config;
  first_config.dim = dim;
  first_config.epochs = 1;
  core::NshdModel first(m, cut, first_config);
  first.train(train_feats, context.train().labels, &teacher_logits);

  // Final: full training.
  core::NshdConfig final_config;
  final_config.dim = dim;
  core::NshdModel final_model(m, cut, final_config);
  final_model.train(train_feats, context.train().labels, &teacher_logits);

  // Embed the test-set hypervectors (bipolar -> +-1 floats for t-SNE).
  auto hv_matrix = [&](core::NshdModel& model) {
    const auto hvs = model.symbolize_all(test_feats);
    tensor::Tensor points(tensor::Shape{static_cast<std::int64_t>(hvs.size()), dim});
    for (std::size_t i = 0; i < hvs.size(); ++i) {
      for (std::int64_t d = 0; d < dim; ++d) {
        points.at(static_cast<std::int64_t>(i), d) = hvs[i].get(d);
      }
    }
    return points;
  };

  analysis::TsneConfig tsne_config;
  tsne_config.iterations = args.get_int("tsne_iters", 350);

  const auto& labels = context.test().labels;
  util::Table table({"stage", "silhouette", "inter/intra separation", "accuracy"});
  for (const auto& [stage, model] :
       {std::pair<std::string, core::NshdModel*>{"iteration 1", &first},
        {"final iteration", &final_model}}) {
    const tensor::Tensor points = hv_matrix(*model);
    const tensor::Tensor embedded = analysis::tsne(points, tsne_config);
    dump_csv("fig11_tsne_" + std::string(stage == "iteration 1" ? "first" : "final") +
                 ".csv",
             embedded, labels);
    table.add_row({stage, util::cell(analysis::silhouette_score(embedded, labels), 3),
                   util::cell(analysis::class_separation_ratio(embedded, labels), 3),
                   util::cell(model->evaluate(test_feats, labels), 4)});
  }
  bench::emit("Fig. 11: t-SNE explainability, " + models::display_name(name) +
                  " layer " + std::to_string(cut),
              table);
  std::printf("2-D embeddings written to fig11_tsne_first.csv / "
              "fig11_tsne_final.csv.\nShape check: the final iteration forms "
              "tighter clusters (higher silhouette/separation) than "
              "iteration 1.\n");
  return 0;
}
