// Design-choice ablations (DESIGN.md §"Design choices worth ablating").
//
//  A. Straight-through estimator: clipped (BinaryNet-style) vs identity
//     when decoding sign() in the manifold backprop (Sec. V-C).
//  B. Retraining rule: MASS class-wise similarity scaling [3] vs classic
//     perceptron-style two-class updates [12].
//  C. Feature reduction into the encoder: learned manifold (the paper's
//     contribution) vs frozen random FC vs PCA projection vs plain
//     truncation of the pooled features.
//  D. Deployment quantization: float class bank vs binarized (popcount)
//     bank — the Vitis-AI claim of Sec. VI-B ("very minor impacts").
#include <functional>

#include "analysis/pca.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::string name = args.get("model", "mobilenetv2s");
  const std::int64_t dim = args.get_int("dim", 3000);

  core::ExperimentContext context(bench::config_from_args(args));
  models::ZooModel& m = context.model(name);
  // An early cut keeps the reduction ablation meaningful: the pooled
  // feature count must exceed F_hat for "truncation" to actually discard
  // information.
  const auto cut = static_cast<std::size_t>(args.get_int("cut", 4));
  const core::ExtractedFeatures& train_feats = context.train_features(name, cut);
  const core::ExtractedFeatures& test_feats = context.test_features(name, cut);
  const tensor::Tensor& teacher_logits = context.teacher_train_logits(name);
  const auto& train_labels = context.train().labels;
  const auto& test_labels = context.test().labels;

  std::printf("Ablations at %s layer %zu (CNN reference %.4f)\n",
              models::display_name(name).c_str(), cut,
              context.cnn_test_accuracy(name));

  // --- A: STE mode ---
  {
    util::Table table({"STE mode", "test acc"});
    for (const auto& [label, mode] :
         {std::pair<const char*, core::SteMode>{"clipped (3-sigma)",
                                                core::SteMode::kClipped},
          {"identity", core::SteMode::kIdentity}}) {
      core::NshdConfig config;
      config.dim = dim;
      config.ste = mode;
      const auto run = context.run_nshd(name, cut, config);
      table.add_row({label, bench::run_cell(run)});
    }
    bench::emit("Ablation A: straight-through estimator for sign()", table);
  }

  // --- B: retraining rule (static encoder for a controlled comparison) ---
  {
    core::NshdConfig config;
    config.dim = dim;
    core::NshdModel nshd(m, cut, config);
    nshd.train(train_feats, train_labels, &teacher_logits);  // fit manifold
    const auto train_hv = nshd.symbolize_all(train_feats);
    const auto test_hv = nshd.symbolize_all(test_feats);

    util::Table table({"retraining rule", "test acc"});
    {
      hd::HdClassifier mass(context.num_classes(), dim);
      mass.bundle_init(train_hv, train_labels);
      hd::MassConfig mc;
      mc.epochs = 20;
      for (std::int64_t e = 0; e < mc.epochs; ++e)
        mass.mass_epoch(train_hv, train_labels, mc);
      table.add_row({"MASS (class-wise scaling)",
                     util::cell(mass.evaluate(test_hv, test_labels), 4)});
    }
    {
      hd::HdClassifier perceptron(context.num_classes(), dim);
      perceptron.bundle_init(train_hv, train_labels);
      for (int e = 0; e < 20; ++e)
        perceptron.perceptron_epoch(train_hv, train_labels, 1.0f);
      table.add_row({"perceptron (two-class)",
                     util::cell(perceptron.evaluate(test_hv, test_labels), 4)});
    }
    {
      hd::HdClassifier bundling(context.num_classes(), dim);
      bundling.bundle_init(train_hv, train_labels);
      table.add_row({"bundling only (no retraining)",
                     util::cell(bundling.evaluate(test_hv, test_labels), 4)});
    }
    bench::emit("Ablation B: class-hypervector retraining rule", table);
  }

  // --- C: feature-reduction method ---
  {
    util::Table table({"reduction", "test acc"});
    auto run_with_manifold_setup =
        [&](const char* label,
            const std::function<void(core::NshdModel&)>& setup,
            bool train_manifold) {
          core::NshdConfig config;
          config.dim = dim;
          config.train_manifold = train_manifold;
          core::NshdModel nshd(m, cut, config);
          if (setup) setup(nshd);
          nshd.train(train_feats, train_labels, &teacher_logits);
          table.add_row({label,
                         util::cell(nshd.evaluate(test_feats, test_labels), 4)});
        };

    run_with_manifold_setup("learned manifold (paper)", nullptr, true);
    run_with_manifold_setup("frozen random FC", nullptr, false);

    // PCA: set the manifold FC to the top-F_hat principal directions of the
    // pooled training features.
    run_with_manifold_setup(
        "PCA projection",
        [&](core::NshdModel& nshd) {
          core::ManifoldLearner* ml = nshd.mutable_manifold();
          const std::int64_t n = train_feats.values.shape()[0];
          const std::int64_t f = train_feats.values.shape()[1];
          tensor::Tensor pooled(tensor::Shape{n, ml->input_features()});
          for (std::int64_t i = 0; i < n; ++i) {
            const tensor::Tensor row = ml->pool(train_feats.values.data() + i * f);
            std::copy(row.span().begin(), row.span().end(),
                      pooled.data() + i * ml->input_features());
          }
          const analysis::Pca pca(pooled, ml->output_features());
          ml->weight() = pca.directions();
          // bias = -W * mean so the projection is centered.
          tensor::Tensor centered_bias(tensor::Shape{ml->output_features()});
          for (std::int64_t o = 0; o < ml->output_features(); ++o) {
            double dot = 0.0;
            for (std::int64_t j = 0; j < ml->input_features(); ++j)
              dot += static_cast<double>(pca.directions().at(o, j)) * pca.mean()[j];
            centered_bias[o] = static_cast<float>(-dot);
          }
          ml->bias() = centered_bias;
        },
        false);

    // Truncation: identity on the first F_hat pooled features.
    run_with_manifold_setup(
        "truncation (first F_hat features)",
        [&](core::NshdModel& nshd) {
          core::ManifoldLearner* ml = nshd.mutable_manifold();
          ml->weight().zero();
          ml->bias().zero();
          for (std::int64_t o = 0;
               o < std::min(ml->output_features(), ml->input_features()); ++o) {
            ml->weight().at(o, o) = 1.0f;
          }
        },
        false);
    bench::emit("Ablation C: feature reduction into the HD encoder", table);
  }

  // --- D: deployment quantization of the class bank ---
  {
    core::NshdConfig config;
    config.dim = dim;
    core::NshdModel nshd(m, cut, config);
    nshd.train(train_feats, train_labels, &teacher_logits);
    const auto test_hv = nshd.symbolize_all(test_feats);
    const double float_acc = nshd.classifier().evaluate(test_hv, test_labels);
    const double quant_acc =
        nshd.classifier().evaluate_quantized(test_hv, test_labels);
    util::Table table({"class bank", "test acc"});
    table.add_row({"float32 (training form)", util::cell(float_acc, 4)});
    table.add_row({"bipolar / popcount (deployed)", util::cell(quant_acc, 4)});
    bench::emit("Ablation D: class-bank quantization (Sec. VI-B claim)", table);
    std::printf("Quantization impact: %.2fpp (paper: \"very minor\").\n",
                (float_acc - quant_acc) * 100.0);
  }
  return 0;
}
