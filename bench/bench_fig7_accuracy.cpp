// Fig. 7 — Accuracy Comparison: VanillaHD / BaselineHD / NSHD / CNN.
//
// Trains every variant for every backbone and paper cut layer on
// SynthCIFAR-10, plus (with --full, or --classes=100) the 100-class task.
//
// Paper shape: VanillaHD is abysmal (39.88% / 19.7% on CIFAR-10/100);
// BaselineHD is clearly below NSHD; NSHD approaches (and at deep cuts can
// match or exceed) the CNN.
//
// The NSHD column also carries a quantized arm: the same trained HD head
// evaluated on int8-extracted features.  A top-1 drop beyond --max_drop_pp
// (default 1.0) percentage points on any row is FATAL — the accuracy gate of
// the int8 deployment path.
//
// First run pretrains the teachers (cached on disk afterwards).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::int64_t dim = args.get_int("dim", 3000);
  const double max_drop_pp = args.get_double("max_drop_pp", 1.0);

  core::ExperimentContext context(bench::config_from_args(args));

  util::Table table({"model", "layer", "VanillaHD", "BaselineHD", "NSHD",
                     "NSHD-int8", "CNN"});
  const double vanilla = context.vanilla_hd_accuracy(dim);
  bool gate_failed = false;

  for (const std::string& name : bench::models_from_args(args)) {
    models::ZooModel& m = context.model(name);
    const double cnn_acc = context.cnn_test_accuracy(name);
    for (std::size_t cut : m.paper_cut_layers) {
      core::NshdConfig nshd_config;
      nshd_config.dim = dim;
      const auto nshd =
          context.run_nshd(name, cut, nshd_config, /*with_quantized=*/true);
      const auto baseline =
          context.run_nshd(name, cut, core::baseline_hd_config(dim));
      if (!nshd.failed) {
        const double drop_pp =
            (nshd.test_accuracy - nshd.quantized_test_accuracy) * 100.0;
        if (drop_pp > max_drop_pp) {
          std::fprintf(stderr,
                       "FATAL: %s layer %zu int8 top-1 drop %.2fpp exceeds %.2fpp\n",
                       name.c_str(), cut, drop_pp, max_drop_pp);
          gate_failed = true;
        }
      }
      table.add_row({models::display_name(name), util::cell(static_cast<int>(cut)),
                     util::cell(vanilla, 4), bench::run_cell(baseline),
                     bench::run_cell(nshd),
                     nshd.failed ? "FAILED"
                                 : util::cell(nshd.quantized_test_accuracy, 4),
                     util::cell(cnn_acc, 4)});
    }
  }
  bench::emit("Fig. 7: accuracy comparison on SynthCIFAR-" +
                  std::to_string(context.num_classes()),
              table);
  std::printf("Shape check: VanillaHD << BaselineHD <= NSHD ~= CNN "
              "(paper: VanillaHD 39.88%%/19.7%% on CIFAR-10/100); "
              "NSHD-int8 within %.1fpp of NSHD.\n", max_drop_pp);
  return gate_failed ? 1 : 0;
}
