// Inference throughput: legacy allocating forward vs the planned engine.
//
// For every zoo model and paper cut point this harness extracts features
// from the same dataset twice — once through the pre-plan code path
// (BatchIterator gather + Sequential::forward_to, reproduced here verbatim)
// and once through an InferencePlan — and reports samples/sec for both,
// the speedup, and the plan's workspace budget (shape-inferred estimate and
// observed high water).  Outputs are cross-checked bitwise: any divergence
// is a correctness bug and fails the bench.
//
// Results land on stdout as a table and in BENCH_inference.json (one record
// per model x cut) for the driver/CI to scrape.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/plan.hpp"
#include "tensor/simd.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace nshd;

/// The pre-plan extraction loop, kept bit-for-bit: unshuffled BatchIterator
/// (per-batch gather copy), allocating forward_to, memcpy into the rows.
tensor::Tensor legacy_extract(models::ZooModel& model, std::size_t cut,
                              const data::Dataset& dataset,
                              std::int64_t batch_size) {
  const std::int64_t f = model.feature_dim_at(cut);
  tensor::Tensor values(tensor::Shape{dataset.size(), f});
  util::Rng rng(1);
  data::BatchIterator batches(dataset, batch_size, rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t row = 0;
  while (batches.next(images, labels)) {
    const tensor::Tensor activations = model.net.forward_to(images, cut);
    std::memcpy(values.data() + row * f, activations.data(),
                static_cast<std::size_t>(activations.numel()) * sizeof(float));
    row += activations.shape()[0];
  }
  return values;
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

struct Record {
  std::string model;
  std::size_t cut = 0;
  double legacy_sps = 0.0;
  double planned_sps = 0.0;
  std::size_t planned_bytes = 0;
  std::size_t peak_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::int64_t batch = args.get_int("batch", 32);
  const int reps = args.get_int("reps", 3);
  const std::string json_path = args.get("json", "BENCH_inference.json");

  data::SynthCifarConfig data_config;
  data_config.num_classes = 4;
  data_config.samples_per_class = args.get_int("per_class", 24);  // 96 samples
  const data::Dataset dataset = data::make_synth_cifar(data_config);
  const double n = static_cast<double>(dataset.size());

  std::vector<std::string> names = models::zoo_model_names();
  if (args.has("models")) names = {args.get("models", "")};

  util::Table table({"model", "cut", "legacy sps", "planned sps", "speedup",
                     "planned ws KiB", "peak ws KiB"});
  std::vector<Record> records;
  bool mismatch = false;

  for (const std::string& name : names) {
    models::ZooModel model = models::make_model(name, 4, /*seed=*/7);
    for (const std::size_t cut : model.paper_cut_layers) {
      nn::InferencePlan plan(model.net, model.input_chw, cut, batch);

      // Warm-up + parity: both paths must agree bitwise before timing.
      const tensor::Tensor legacy = legacy_extract(model, cut, dataset, batch);
      const core::ExtractedFeatures planned =
          core::extract_features(plan, dataset, batch);
      if (legacy.numel() != planned.values.numel() ||
          std::memcmp(legacy.data(), planned.values.data(),
                      static_cast<std::size_t>(legacy.numel()) * sizeof(float)) != 0) {
        std::fprintf(stderr, "FATAL: %s cut=%zu planned != legacy\n",
                     name.c_str(), cut);
        mismatch = true;
        continue;
      }

      const double legacy_s = best_seconds(
          reps, [&] { legacy_extract(model, cut, dataset, batch); });
      const double planned_s = best_seconds(
          reps, [&] { core::extract_features(plan, dataset, batch); });

      Record rec;
      rec.model = name;
      rec.cut = cut;
      rec.legacy_sps = n / legacy_s;
      rec.planned_sps = n / planned_s;
      rec.planned_bytes = plan.planned_workspace_bytes();
      rec.peak_bytes = plan.peak_workspace_bytes();
      records.push_back(rec);

      table.add_row({name, util::cell(static_cast<int>(cut)),
                     util::cell(rec.legacy_sps, 1),
                     util::cell(rec.planned_sps, 1),
                     util::cell(rec.planned_sps / rec.legacy_sps, 2) + "x",
                     util::cell(static_cast<double>(rec.planned_bytes) / 1024.0, 1),
                     util::cell(static_cast<double>(rec.peak_bytes) / 1024.0, 1)});
    }
  }

  std::printf("\n== inference throughput, batch %lld (bitwise parity verified) ==\n%s",
              static_cast<long long>(batch), table.to_string().c_str());

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    {
      bench::JsonWriter json(out);
      json.begin_object();
      json.field("isa", tensor::simd::kIsaName);
      json.field("batch", batch);
      json.field("samples", dataset.size());
      json.begin_array("results");
      for (const Record& r : records) {
        json.begin_object();
        json.field("model", r.model);
        json.field("cut", r.cut);
        json.field("legacy_samples_per_sec", r.legacy_sps, 2);
        json.field("planned_samples_per_sec", r.planned_sps, 2);
        json.field("speedup", r.planned_sps / r.legacy_sps, 3);
        json.field("planned_workspace_bytes", r.planned_bytes);
        json.field("peak_workspace_bytes", r.peak_bytes);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n", json_path.c_str());
  }
  return mismatch ? 1 : 0;
}
