// Training throughput: the legacy allocating train loop vs the planned
// zero-alloc path (TrainingPlan + BatchPipeline).
//
// For every zoo model this harness first proves the migration gates —
// legacy and planned runs from the same seed must finish with bitwise
// identical weights, and the planned run must be bitwise invariant across
// NSHD_THREADS in {1, 4, 8} — and only then times both paths (best-of-reps
// full runs, fresh model each rep) as epochs/sec.  Legacy is pinned to one
// thread with a synchronous batch feed; planned runs at the host's thread
// count with the prefetch pipeline enabled.  Any parity break fails the
// bench.
//
// Results land on stdout as a table and in BENCH_training.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/train_plan.hpp"
#include "nn/trainer.hpp"
#include "tensor/simd.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nshd;

/// One full training run on a fresh same-seed model; returns the final
/// state bank (params + running stats) for the parity gates.
std::vector<tensor::Tensor> train_once(const std::string& name,
                                       const data::Dataset& train,
                                       nn::TrainConfig config, bool planned,
                                       int threads) {
  util::set_thread_count(threads);
  models::ZooModel model = models::make_model(name, train.num_classes,
                                              /*seed=*/7);
  config.planned = planned;
  config.learning_rate =
      std::min(config.learning_rate, model.suggested_learning_rate);
  nn::train_classifier(model.net, train, config);
  std::vector<tensor::Tensor*> ptrs;
  model.net.append_state(ptrs);
  std::vector<tensor::Tensor> out;
  out.reserve(ptrs.size());
  for (const tensor::Tensor* t : ptrs) out.push_back(*t);
  return out;
}

bool states_bitwise_equal(const std::vector<tensor::Tensor>& a,
                          const std::vector<tensor::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].numel() != b[i].numel()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) != 0)
      return false;
  }
  return true;
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

struct Record {
  std::string model;
  double legacy_eps = 0.0;   // epochs/sec, legacy path @ 1 thread
  double planned_eps = 0.0;  // epochs/sec, planned path @ host threads
  int planned_threads = 1;
  std::size_t planned_bytes = 0;
  std::size_t peak_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::int64_t epochs = args.get_int("epochs", 3);
  const std::int64_t batch = args.get_int("batch", 32);
  const int reps = args.get_int("reps", 3);
  const std::string json_path = args.get("json", "BENCH_training.json");

  data::SynthCifarConfig data_config;
  data_config.num_classes = 4;
  data_config.samples_per_class = args.get_int("per_class", 24);  // 96 samples
  const data::Dataset train = data::make_synth_cifar(data_config);

  nn::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = batch;
  config.target_train_accuracy = 0.0f;  // run every epoch; we time full runs
  config.seed = 7;

  const std::vector<std::string> names = nshd::bench::models_from_args(args);
  const int host_threads = util::thread_count();

  util::Table table({"model", "legacy ep/s", "planned ep/s", "speedup",
                     "planned ws KiB", "peak ws KiB"});
  std::vector<Record> records;
  bool parity_failure = false;

  for (const std::string& name : names) {
    // Gate 1: legacy and planned share one gradient bitstream, so the final
    // weights must match bitwise.  Gate 2: the planned accumulation order is
    // fixed, so the thread count must not change a single bit.
    nn::TrainConfig gate = config;
    gate.prefetch_depth = 0;
    const std::vector<tensor::Tensor> legacy_w =
        train_once(name, train, gate, /*planned=*/false, /*threads=*/1);
    const std::vector<tensor::Tensor> planned_w1 =
        train_once(name, train, gate, /*planned=*/true, /*threads=*/1);
    if (!states_bitwise_equal(legacy_w, planned_w1)) {
      std::fprintf(stderr, "FATAL: %s planned weights != legacy weights\n",
                   name.c_str());
      parity_failure = true;
      continue;
    }
    gate.prefetch_depth = 2;  // the pipeline must not disturb the stream
    for (const int threads : {4, 8}) {
      const std::vector<tensor::Tensor> planned_wt =
          train_once(name, train, gate, /*planned=*/true, threads);
      if (!states_bitwise_equal(planned_w1, planned_wt)) {
        std::fprintf(stderr, "FATAL: %s planned weights differ at %d threads\n",
                     name.c_str(), threads);
        parity_failure = true;
      }
    }
    if (parity_failure) continue;

    // Timed runs: legacy @ 1 thread + synchronous feed vs planned @ host
    // threads + prefetch.
    nn::TrainConfig legacy_cfg = config;
    legacy_cfg.prefetch_depth = 0;
    const double legacy_s = best_seconds(reps, [&] {
      train_once(name, train, legacy_cfg, /*planned=*/false, /*threads=*/1);
    });
    nn::TrainConfig planned_cfg = config;
    planned_cfg.prefetch_depth = 2;
    const double planned_s = best_seconds(reps, [&] {
      train_once(name, train, planned_cfg, /*planned=*/true, host_threads);
    });
    util::set_thread_count(host_threads);

    Record rec;
    rec.model = name;
    rec.legacy_eps = static_cast<double>(epochs) / legacy_s;
    rec.planned_eps = static_cast<double>(epochs) / planned_s;
    rec.planned_threads = host_threads;
    {
      models::ZooModel probe = models::make_model(name, train.num_classes, 7);
      nn::TrainingPlan plan(probe.net, train.sample_shape(), batch);
      rec.planned_bytes = plan.planned_workspace_bytes();
      // One step materializes the high-water mark the shape-inferred budget
      // is checked against.
      util::Rng feed_rng(1);
      data::BatchIterator feed(train, batch, feed_rng, /*shuffle=*/false);
      tensor::Tensor images;
      std::vector<std::int64_t> labels;
      if (feed.next(images, labels)) plan.step(images.view(), labels);
      rec.peak_bytes = plan.peak_workspace_bytes();
    }
    records.push_back(rec);

    table.add_row({name, util::cell(rec.legacy_eps, 2),
                   util::cell(rec.planned_eps, 2),
                   util::cell(rec.planned_eps / rec.legacy_eps, 2) + "x",
                   util::cell(static_cast<double>(rec.planned_bytes) / 1024.0, 1),
                   util::cell(static_cast<double>(rec.peak_bytes) / 1024.0, 1)});
  }

  std::printf("\n== training throughput, %lld epochs x batch %lld, "
              "%d host thread(s) (bitwise parity + thread invariance "
              "verified) ==\n%s",
              static_cast<long long>(epochs), static_cast<long long>(batch),
              host_threads, table.to_string().c_str());

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    {
      nshd::bench::JsonWriter json(out);
      json.begin_object();
      json.field("isa", tensor::simd::kIsaName);
      json.field("epochs", epochs);
      json.field("batch", batch);
      json.field("samples", train.size());
      json.begin_array("results");
      for (const Record& r : records) {
        json.begin_object();
        json.field("model", r.model);
        json.field("legacy_epochs_per_sec", r.legacy_eps, 3);
        json.field("planned_epochs_per_sec", r.planned_eps, 3);
        json.field("speedup", r.planned_eps / r.legacy_eps, 3);
        json.field("planned_threads", r.planned_threads);
        json.field("planned_workspace_bytes", r.planned_bytes);
        json.field("peak_workspace_bytes", r.peak_bytes);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n",
                 json_path.c_str());
  }
  return parity_failure ? 1 : 0;
}
