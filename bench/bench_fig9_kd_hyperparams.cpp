// Fig. 9 — Accuracies for Hyperparameter Search in KD (alpha x temperature).
//
// The paper's grid is Efficientnetb7 layer 7 on CIFAR-100: alpha in
// {0, 0.1..0.9}, T in {12..17}; alpha=0 is the no-KD floor and KD boosts
// accuracy by ~7.4% at the best cell.
//
// For tractability the grid reuses one trained manifold: NSHD is trained
// once (which fits the manifold), then each grid cell retrains the class
// hypervectors from scratch on cached encodings (Algorithm 1 with the cell's
// alpha and T) — exactly how a practitioner would run this search.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::int64_t dim = args.get_int("dim", 3000);
  // The paper's grid cell is Efficientnetb7 layer 7 on CIFAR-100 — a *weak*
  // student far below its teacher, which is where distillation has room to
  // act.  The tractable default here reproduces that regime with an early
  // Mobilenetv2 cut; pass --model=efficientnet_b7s --cut=7 --classes=100 for
  // the paper's exact cell.
  const std::string name = args.get("model", "mobilenetv2s");

  core::ExperimentContext context(bench::config_from_args(args));
  models::ZooModel& m = context.model(name);
  const auto cut = static_cast<std::size_t>(args.get_int("cut", 2));

  // Fit the manifold once (full NSHD training at the default KD setting).
  core::NshdConfig fit_config;
  fit_config.dim = dim;
  core::NshdModel nshd(m, cut, fit_config);
  const core::ExtractedFeatures& train_feats = context.train_features(name, cut);
  const core::ExtractedFeatures& test_feats = context.test_features(name, cut);
  const tensor::Tensor& teacher_logits = context.teacher_train_logits(name);
  nshd.train(train_feats, context.train().labels, &teacher_logits);

  // Cache encodings under the frozen manifold.
  const std::vector<hd::Hypervector> train_hv = nshd.symbolize_all(train_feats);
  const std::vector<hd::Hypervector> test_hv = nshd.symbolize_all(test_feats);

  const std::vector<float> alphas = {0.0f, 0.1f, 0.2f, 0.3f, 0.4f,
                                     0.5f, 0.6f, 0.7f, 0.8f, 0.9f};
  const std::vector<float> temps = {12, 13, 14, 15, 16, 17};

  std::vector<std::string> header{"alpha \\ T"};
  for (float t : temps) header.push_back(util::cell(t, 0));
  util::Table table(header);

  double floor_acc = 0.0, best_acc = 0.0;
  float best_alpha = 0.0f, best_t = 0.0f;
  for (float alpha : alphas) {
    std::vector<std::string> row{util::cell(alpha, 1)};
    for (float t : temps) {
      hd::HdClassifier classifier(context.num_classes(), dim);
      classifier.bundle_init(train_hv, context.train().labels);
      core::KdRetrainConfig retrain;
      retrain.alpha = alpha;
      retrain.temperature = t;
      retrain.use_kd = alpha > 0.0f;
      retrain.epochs = args.get_int("epochs", 12);
      core::kd_retrain(classifier, train_hv, context.train().labels,
                       &teacher_logits, retrain);
      const double acc = classifier.evaluate(test_hv, context.test().labels);
      row.push_back(util::cell(acc, 4));
      if (alpha == 0.0f) floor_acc = std::max(floor_acc, acc);
      if (acc > best_acc) {
        best_acc = acc;
        best_alpha = alpha;
        best_t = t;
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit("Fig. 9: KD hyperparameter grid, " + models::display_name(name) +
                  " layer " + std::to_string(cut) + ", SynthCIFAR-" +
                  std::to_string(context.num_classes()),
              table);
  std::printf("alpha=0 floor: %.4f; best: %.4f at alpha=%.1f, T=%.0f "
              "(KD boost %.2fpp; paper: +7.39%% at alpha~0.7, T~14-16).\n",
              floor_acc, best_acc, best_alpha, best_t,
              (best_acc - floor_acc) * 100.0);
  return 0;
}
