// Thread-pool scaling of the three hot kernels: GEMM, batch HD encoding,
// and classifier similarity search.
//
// Reports wall-clock speedup at 1/2/4/8 threads (configurable via
// --threads=a,b,c) against the serial baseline, and cross-checks that the
// outputs are bitwise identical at every pool size — the fixed-chunk
// determinism contract of util::parallel_for.  Run on a multi-core host;
// a single-core container will report ~1x across the board.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "hd/projection.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nshd;

std::vector<int> threads_from_args(const util::CliArgs& args) {
  std::vector<int> out;
  std::string csv = args.get("threads", "1,2,4,8");
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t next = csv.find(',', pos);
    const std::string token =
        csv.substr(pos, next == std::string::npos ? std::string::npos : next - pos);
    if (!token.empty()) {
      try {
        out.push_back(std::stoi(token));
      } catch (const std::exception&) {
        std::fprintf(stderr, "ignoring non-numeric --threads token \"%s\"\n", token.c_str());
      }
    }
    pos = next == std::string::npos ? csv.size() : next + 1;
  }
  return out;
}

/// Times fn() over `reps` repetitions and returns seconds per repetition.
template <typename Fn>
double time_reps(int reps, Fn&& fn) {
  util::Stopwatch watch;
  for (int r = 0; r < reps; ++r) fn();
  return watch.seconds() / reps;
}

/// FNV-1a over raw bytes, for the bitwise cross-check between pool sizes.
std::uint64_t checksum_bytes(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::vector<int> thread_counts = threads_from_args(args);
  const int reps = args.get_int("reps", 3);

  // GEMM workload: a conv-sized multiply.
  const std::int64_t m = args.get_int("gemm_m", 256);
  const std::int64_t k = args.get_int("gemm_k", 512);
  const std::int64_t n = args.get_int("gemm_n", 256);
  util::Rng rng(1);
  tensor::Tensor a(tensor::Shape{m, k}), b(tensor::Shape{k, n}), c(tensor::Shape{m, n});
  for (float& x : a.span()) x = rng.normal();
  for (float& x : b.span()) x = rng.normal();

  // HD encode workload: a batch through a paper-sized projection.
  const std::int64_t dim = args.get_int("dim", 3000);
  const std::int64_t features = args.get_int("features", 100);
  const std::int64_t batch = args.get_int("batch", 64);
  hd::RandomProjection proj(dim, features, rng);
  std::vector<tensor::Tensor> samples;
  for (std::int64_t i = 0; i < batch; ++i) {
    tensor::Tensor v(tensor::Shape{features});
    for (float& x : v.span()) x = rng.normal();
    samples.push_back(std::move(v));
  }

  // Classifier search workload: evaluate a labeled set against a bank.
  const std::int64_t classes = args.get_int("classes", 20);
  hd::HdClassifier clf(classes, dim);
  std::vector<hd::Hypervector> queries;
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < 200; ++i) {
    queries.push_back(hd::Hypervector::random(dim, rng));
    labels.push_back(i % classes);
  }
  clf.bundle_init(queries, labels);

  util::Table table({"threads", "gemm ms", "gemm speedup", "encode ms",
                     "encode speedup", "search ms", "search speedup"});
  double gemm_base = 0.0, encode_base = 0.0, search_base = 0.0;
  std::uint64_t gemm_sum = 0, encode_sum = 0;
  double search_ref = 0.0;
  for (const int threads : thread_counts) {
    util::set_thread_count(threads);

    const double gemm_s = time_reps(reps, [&] {
      tensor::gemm(a.data(), b.data(), c.data(), m, k, n);
    });
    std::vector<hd::Hypervector> encoded;
    const double encode_s = time_reps(reps, [&] { encoded = proj.encode_all(samples); });
    double acc = 0.0;
    const double search_s = time_reps(reps, [&] { acc = clf.evaluate(queries, labels); });

    // Determinism cross-check against the first (serial) run.
    const std::uint64_t g_sum =
        checksum_bytes(c.data(), static_cast<std::size_t>(c.numel()) * sizeof(float));
    std::uint64_t e_sum = 0xcbf29ce484222325ULL;
    for (const auto& h : encoded)
      e_sum ^= checksum_bytes(h.words(), h.word_count() * sizeof(std::uint64_t));
    if (gemm_base == 0.0) {
      gemm_base = gemm_s;
      encode_base = encode_s;
      search_base = search_s;
      gemm_sum = g_sum;
      encode_sum = e_sum;
      search_ref = acc;
    } else if (g_sum != gemm_sum || e_sum != encode_sum || acc != search_ref) {
      std::fprintf(stderr, "FATAL: results differ at %d threads\n", threads);
      return 1;
    }

    table.add_row({util::cell(threads), util::cell(gemm_s * 1e3, 2),
                   util::cell(gemm_base / gemm_s, 2) + "x",
                   util::cell(encode_s * 1e3, 2),
                   util::cell(encode_base / encode_s, 2) + "x",
                   util::cell(search_s * 1e3, 2),
                   util::cell(search_base / search_s, 2) + "x"});
  }
  std::printf("\n== parallel scaling (bitwise-identical outputs verified) ==\n%s",
              table.to_string().c_str());
  return 0;
}
