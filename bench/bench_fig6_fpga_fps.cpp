// Fig. 6 — Throughput (FPS) of the FPGA implementation.
//
// Models the DPU deployment of each backbone and its NSHD counterpart at
// the earliest energy-study cut, over hypervector dimensions 1K/3K/10K.
//
// Paper shape: NSHD beats the CNN on the same DPU (average +38.14%);
// higher dimensions erode some of the advantage.
#include "bench_common.hpp"
#include "hw/census.hpp"
#include "hw/fpga.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  const util::CliArgs args(argc, argv);
  const std::int64_t f_hat = args.get_int("fhat", 100);
  const std::int64_t classes = args.get_int("classes", 10);
  const hw::FpgaModel fpga;

  util::Table table({"model", "layer", "CNN FPS", "NSHD 1K", "NSHD 3K",
                     "NSHD 10K", "gain @3K"});
  double gain_sum = 0.0;
  int gain_count = 0;
  for (const std::string& name : bench::models_from_args(args)) {
    models::ZooModel m = models::make_model(name, classes, 1);
    const std::size_t cut = m.energy_cut_layers.front();
    const double cnn_fps = fpga.cnn_fps(hw::cnn_census(m), m.net.size());
    std::vector<std::string> row{models::display_name(name),
                                 util::cell(static_cast<int>(cut)),
                                 util::cell(cnn_fps, 0)};
    double fps_3k = 0.0;
    for (std::int64_t dim : {1000, 3000, 10000}) {
      const double fps =
          fpga.nshd_fps(hw::nshd_census(m, cut, dim, f_hat, classes), cut + 1);
      if (dim == 3000) fps_3k = fps;
      row.push_back(util::cell(fps, 0));
    }
    const double gain = fps_3k / cnn_fps - 1.0;
    gain_sum += gain;
    ++gain_count;
    row.push_back(util::cell(gain * 100.0, 1) + "%");
    table.add_row(std::move(row));
  }
  bench::emit("Fig. 6: FPGA (DPU) inference throughput, CNN vs NSHD", table);
  std::printf("Average NSHD throughput gain @3K: %.1f%% "
              "(paper: 38.14%% on average).\n",
              gain_sum / gain_count * 100.0);
  return 0;
}
