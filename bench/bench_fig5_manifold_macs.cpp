// Fig. 5 — Impact of the Manifold Learner on MACs.
//
// Counts multiply-accumulates of one inference with and without the
// manifold learner (BaselineHD encodes the raw cut features directly),
// under the paper's accounting: binding/bundling are element-wise
// multiply/adds, so encoding costs F_in * D.
//
// Paper shape: NSHD needs 20.9% / 28.95% fewer MACs for Efficientnetb0 at
// layers 6 / 7; savings grow with D (up to 34% for Mobilenetv2@17 at 10K).
#include "bench_common.hpp"
#include "hw/census.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  const util::CliArgs args(argc, argv);
  const std::int64_t f_hat = args.get_int("fhat", 100);
  const std::int64_t classes = args.get_int("classes", 10);

  util::Table table({"model", "layer", "D", "BaselineHD MACs", "NSHD MACs",
                     "saving"});
  for (const std::string& name : bench::models_from_args(args)) {
    models::ZooModel m = models::make_model(name, classes, 1);
    for (std::size_t cut : m.energy_cut_layers) {
      for (std::int64_t dim : {3000, 10000}) {
        const hw::NshdCensus nshd = hw::nshd_census(m, cut, dim, f_hat, classes);
        const hw::NshdCensus baseline = hw::baseline_census(m, cut, dim, classes);
        const double saving =
            1.0 - static_cast<double>(nshd.total_macs()) /
                      static_cast<double>(baseline.total_macs());
        table.add_row({models::display_name(name), util::cell(static_cast<int>(cut)),
                       dim == 3000 ? "3K" : "10K",
                       util::format_count(static_cast<double>(baseline.total_macs())),
                       util::format_count(static_cast<double>(nshd.total_macs())),
                       util::cell(saving * 100.0, 1) + "%"});
      }
    }
  }
  bench::emit("Fig. 5: MAC reduction from the manifold learner (NSHD vs BaselineHD)",
              table);
  std::printf("Shape check: savings are larger for D=10K than D=3K "
              "(encoding cost scales with D; paper: 20.9-34%%).\n");
  return 0;
}
