// GEMM micro-kernel throughput: scalar reference vs the SIMD layer.
//
// Each kernel is timed three ways: `scalar` — a textbook single-accumulator
// triple loop (dot-product form, which the compiler cannot auto-vectorize
// without -ffast-math, so it is an honest scalar baseline); `prev` — the
// pre-SIMD repository kernel (blocked ikj with the zero-skip branch, which
// GCC partially auto-vectorizes), kept so the trajectory across PRs stays
// visible; and `simd` — the register-blocked micro-kernels of
// tensor/gemm.cpp.  SIMD output is checked against the scalar reference
// before timing; any excursion beyond the f32 accumulation tolerance fails
// the bench.  Results land on stdout and in BENCH_gemm.json.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/simd.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nshd;

// -- scalar references: single accumulator, canonical loop order ----------

void scalar_gemm(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
      c[i * n + j] = s;
    }
}

void scalar_gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += a[i * k + p] * b[j * k + p];
      c[i * n + j] = s;
    }
}

void scalar_gemm_at(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += a[p * m + i] * b[p * n + j];
      c[i * n + j] = s;
    }
}

void scalar_gemv(const float* a, const float* x, float* y, std::int64_t m,
                 std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) s += a[i * n + j] * x[j];
    y[i] = s;
  }
}

void scalar_gemv_t(const float* a, const float* x, float* y, std::int64_t m,
                   std::int64_t n) {
  std::memset(y, 0, static_cast<std::size_t>(n) * sizeof(float));
  for (std::int64_t i = 0; i < m; ++i) {
    const float xi = x[i];
    for (std::int64_t j = 0; j < n; ++j) y[j] += xi * a[i * n + j];
  }
}

// -- the pre-SIMD repository kernels, reproduced verbatim -----------------

void prev_gemm(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kBlockM = 64, kBlockK = 256, kRowGrain = 16;
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    std::memset(c + r0 * n, 0, static_cast<std::size_t>((r1 - r0) * n) * sizeof(float));
    for (std::int64_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const std::int64_t i1 = std::min(i0 + kBlockM, r1);
      for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const std::int64_t p1 = std::min(p0 + kBlockK, k);
        for (std::int64_t i = i0; i < i1; ++i) {
          float* ci = c + i * n;
          const float* ai = a + i * k;
          for (std::int64_t p = p0; p < p1; ++p) {
            const float aip = ai[p];
            if (aip == 0.0f) continue;
            const float* bp = b + p * n;
            for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
          }
        }
      }
    }
  });
}

void prev_gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kRowGrain = 16;
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        float sum = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
        ci[j] = sum;
      }
    }
  });
}

void prev_gemm_at(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kRowGrain = 16;
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    std::memset(c + r0 * n, 0, static_cast<std::size_t>((r1 - r0) * n) * sizeof(float));
    for (std::int64_t p = 0; p < k; ++p) {
      const float* ap = a + p * m;
      const float* bp = b + p * n;
      for (std::int64_t i = r0; i < r1; ++i) {
        const float api = ap[i];
        if (api == 0.0f) continue;
        float* ci = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += api * bp[j];
      }
    }
  });
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

struct Record {
  std::string kernel;
  std::int64_t m = 0, k = 0, n = 0;
  double scalar_gflops = 0.0;
  double prev_gflops = 0.0;  // 0 when the kernel had no prev variant
  double simd_gflops = 0.0;
  bool parity_ok = true;
};

bool check_parity(const std::vector<float>& got, const std::vector<float>& want,
                  std::int64_t k, const char* label) {
  const float tol = 1e-4f * std::sqrt(static_cast<float>(k)) + 1e-4f;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::fabs(got[i] - want[i]) > tol) {
      std::fprintf(stderr, "FATAL: %s parity failure at %zu: %g vs %g (tol %g)\n",
                   label, i, got[i], want[i], tol);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int reps = args.get_int("reps", 3);
  const std::string json_path = args.get("json", "BENCH_gemm.json");

  util::Rng rng(7);
  util::Table table({"kernel", "shape", "scalar GF/s", "prev GF/s", "simd GF/s",
                     "speedup vs scalar"});
  std::vector<Record> records;
  bool all_ok = true;

  struct Shape {
    std::int64_t m, k, n;
  };
  const Shape shapes[] = {{256, 256, 256}, {512, 512, 512}};

  for (const Shape& s : shapes) {
    std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
    std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    std::vector<float> c_ref(static_cast<std::size_t>(s.m * s.n));
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
    const double flops = 2.0 * static_cast<double>(s.m) * s.k * s.n;

    struct Variant {
      const char* name;
      void (*scalar)(const float*, const float*, float*, std::int64_t, std::int64_t, std::int64_t);
      void (*prev)(const float*, const float*, float*, std::int64_t, std::int64_t, std::int64_t);
      void (*simd)(const float*, const float*, float*, std::int64_t, std::int64_t, std::int64_t, bool);
    };
    const Variant variants[] = {
        {"gemm", scalar_gemm, prev_gemm, tensor::gemm},
        {"gemm_bt", scalar_gemm_bt, prev_gemm_bt, tensor::gemm_bt},
        {"gemm_at", scalar_gemm_at, prev_gemm_at, tensor::gemm_at},
    };
    for (const Variant& v : variants) {
      v.scalar(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
      v.simd(a.data(), b.data(), c.data(), s.m, s.k, s.n, false);
      const bool ok = check_parity(c, c_ref, s.k, v.name);
      all_ok = all_ok && ok;

      Record rec;
      rec.kernel = v.name;
      rec.m = s.m;
      rec.k = s.k;
      rec.n = s.n;
      rec.parity_ok = ok;
      rec.scalar_gflops =
          flops / best_seconds(reps, [&] { v.scalar(a.data(), b.data(), c.data(), s.m, s.k, s.n); }) / 1e9;
      rec.prev_gflops =
          flops / best_seconds(reps, [&] { v.prev(a.data(), b.data(), c.data(), s.m, s.k, s.n); }) / 1e9;
      rec.simd_gflops =
          flops / best_seconds(reps, [&] { v.simd(a.data(), b.data(), c.data(), s.m, s.k, s.n, false); }) / 1e9;
      records.push_back(rec);

      char shape_str[64];
      std::snprintf(shape_str, sizeof shape_str, "%lldx%lldx%lld",
                    static_cast<long long>(s.m), static_cast<long long>(s.k),
                    static_cast<long long>(s.n));
      table.add_row({rec.kernel, shape_str, util::cell(rec.scalar_gflops, 2),
                     util::cell(rec.prev_gflops, 2), util::cell(rec.simd_gflops, 2),
                     util::cell(rec.simd_gflops / rec.scalar_gflops, 2) + "x"});
    }
  }

  // gemv / gemv_t at an HD-sized shape (bank scans, manifold regressor).
  {
    const std::int64_t m = 2048, n = 2048;
    std::vector<float> a(static_cast<std::size_t>(m * n));
    std::vector<float> x(static_cast<std::size_t>(n)), xt(static_cast<std::size_t>(m));
    for (auto& v : a) v = rng.normal();
    for (auto& v : x) v = rng.normal();
    for (auto& v : xt) v = rng.normal();
    std::vector<float> y_ref(static_cast<std::size_t>(m)), y(static_cast<std::size_t>(m));
    std::vector<float> yt_ref(static_cast<std::size_t>(n)), yt(static_cast<std::size_t>(n));
    const double flops = 2.0 * static_cast<double>(m) * n;

    scalar_gemv(a.data(), x.data(), y_ref.data(), m, n);
    tensor::gemv(a.data(), x.data(), y.data(), m, n);
    bool ok = check_parity(y, y_ref, n, "gemv");
    scalar_gemv_t(a.data(), xt.data(), yt_ref.data(), m, n);
    tensor::gemv_t(a.data(), xt.data(), yt.data(), m, n);
    ok = check_parity(yt, yt_ref, m, "gemv_t") && ok;
    all_ok = all_ok && ok;

    Record rv;
    rv.kernel = "gemv";
    rv.m = m;
    rv.n = n;
    rv.k = n;
    rv.parity_ok = ok;
    rv.scalar_gflops =
        flops / best_seconds(reps, [&] { scalar_gemv(a.data(), x.data(), y.data(), m, n); }) / 1e9;
    rv.simd_gflops =
        flops / best_seconds(reps, [&] { tensor::gemv(a.data(), x.data(), y.data(), m, n); }) / 1e9;
    records.push_back(rv);
    table.add_row({"gemv", "2048x2048", util::cell(rv.scalar_gflops, 2), "-",
                   util::cell(rv.simd_gflops, 2),
                   util::cell(rv.simd_gflops / rv.scalar_gflops, 2) + "x"});

    Record rt;
    rt.kernel = "gemv_t";
    rt.m = m;
    rt.n = n;
    rt.k = m;
    rt.parity_ok = ok;
    rt.scalar_gflops =
        flops / best_seconds(reps, [&] { scalar_gemv_t(a.data(), xt.data(), yt.data(), m, n); }) / 1e9;
    rt.simd_gflops =
        flops / best_seconds(reps, [&] { tensor::gemv_t(a.data(), xt.data(), yt.data(), m, n); }) / 1e9;
    records.push_back(rt);
    table.add_row({"gemv_t", "2048x2048", util::cell(rt.scalar_gflops, 2), "-",
                   util::cell(rt.simd_gflops, 2),
                   util::cell(rt.simd_gflops / rt.scalar_gflops, 2) + "x"});
  }

  std::printf("\n== GEMM kernels, isa %s width %d (parity %s) ==\n%s",
              tensor::simd::kIsaName, tensor::simd::kWidth,
              all_ok ? "verified" : "FAILED", table.to_string().c_str());

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(out, "{\n  \"isa\": \"%s\",\n  \"width\": %d,\n  \"results\": [\n",
                 tensor::simd::kIsaName, tensor::simd::kWidth);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const Record& r = records[i];
      std::fprintf(out,
                   "    {\"kernel\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": %lld, "
                   "\"scalar_gflops\": %.3f, \"prev_gflops\": %.3f, "
                   "\"simd_gflops\": %.3f, \"speedup_vs_scalar\": %.3f, "
                   "\"parity\": \"%s\"}%s\n",
                   r.kernel.c_str(), static_cast<long long>(r.m),
                   static_cast<long long>(r.k), static_cast<long long>(r.n),
                   r.scalar_gflops, r.prev_gflops, r.simd_gflops,
                   r.simd_gflops / r.scalar_gflops, r.parity_ok ? "ok" : "FAIL",
                   i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
