// Serving throughput: dynamic batching vs single-request execution.
//
// This harness measures what serve::Engine exists to buy — request
// throughput under concurrent traffic.  For each zoo model it trains one
// NSHD head, then offers the same closed-loop load (S client threads, each
// submit -> wait -> repeat) to three serving configurations:
//
//   single       thread-per-request baseline: each client runs the whole
//                pipeline itself — allocating Sequential::forward_to, then
//                per-query symbolize + similarities.  No plans, no
//                workspaces, no batching: serving as it looks without this
//                subsystem.
//   warm-single  serve::Engine with max_batch = 1: warm plans and pooled
//                workspaces, but every request is still its own forward.
//                Isolates the preallocation win from the batching win.
//   batched      serve::Engine with max_batch = S: the batch former
//                coalesces concurrent requests into one planned forward
//                plus one batched HD pass.
//
// All three serve identical in-flight load, so by Little's law QPS and
// latency differences come from the compute path alone.  Responses are
// known bitwise-identical between the two engine modes (tested in
// serve_test), so this bench measures speed only.  The batching margin
// scales with core count: on a single-core host it comes purely from
// amortizing allocation, dispatch, and weight-streaming overheads; with
// idle cores the shared pool widens it further.
//
// Results land on stdout as a table and in BENCH_serving.json (one record
// per model x mode) for the driver/CI to scrape.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "serve/engine.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace nshd;

std::unique_ptr<serve::ModelBundle> trained_bundle(const std::string& name,
                                                   std::size_t cut,
                                                   const data::Dataset& train,
                                                   std::int64_t max_batch) {
  core::NshdConfig config;
  config.dim = 512;
  config.manifold_features = 32;
  config.epochs = 2;
  config.use_kd = false;
  config.train_manifold = false;
  auto bundle = std::make_unique<serve::ModelBundle>(
      models::make_model(name, train.num_classes, /*seed=*/7), cut, config,
      max_batch);
  const core::ExtractedFeatures features =
      core::extract_features(bundle->plan, train, max_batch);
  bundle->nshd.train(features, train.labels, /*teacher_logits=*/nullptr);
  return bundle;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct ModeResult {
  std::string mode;
  std::int64_t max_batch = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;           // queue-full sheds
  std::uint64_t rejected_overload = 0;  // admission-control sheds
  std::uint64_t timed_out = 0;
  std::uint64_t internal_errors = 0;
  std::uint64_t degraded = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_batch = 0.0;
};

/// Runs a closed loop of `submitters` threads against `engine` for
/// `seconds`, after a short warm-up; collects per-request total latency.
ModeResult drive(serve::Engine& engine, const std::string& model_id,
                 const data::Dataset& requests, const std::string& mode,
                 int submitters, double seconds) {
  // Warm-up: fill the plan's workspace pool and fault in code paths.
  for (int i = 0; i < submitters; ++i) {
    std::future<serve::Response> future;
    if (engine.submit(model_id, requests.sample(i % requests.size()), &future) ==
        serve::SubmitStatus::kOk)
      (void)future.get();
  }
  const serve::EngineStats before = engine.stats();

  std::mutex latency_mutex;
  std::vector<double> latencies;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  util::Stopwatch watch;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> local;
      std::int64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        std::future<serve::Response> future;
        if (engine.submit(model_id, requests.sample(i++ % requests.size()),
                          &future) != serve::SubmitStatus::kOk)
          continue;  // typed rejection; closed loop just retries
        local.push_back(future.get().total_ms);
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  while (watch.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  const double elapsed = watch.seconds();
  const serve::EngineStats after = engine.stats();

  ModeResult result;
  result.mode = mode;
  result.max_batch = engine.config().max_batch;
  result.completed = after.completed - before.completed;
  result.rejected = (after.rejected_full - before.rejected_full);
  result.rejected_overload = after.rejected_overload - before.rejected_overload;
  result.timed_out = after.timed_out - before.timed_out;
  result.internal_errors = after.internal_errors - before.internal_errors;
  result.degraded = after.degraded - before.degraded;
  result.seconds = elapsed;
  result.qps = static_cast<double>(result.completed) / elapsed;
  const std::uint64_t batches = after.batches - before.batches;
  result.mean_batch = batches == 0 ? 0.0
                                   : static_cast<double>(result.completed) /
                                         static_cast<double>(batches);
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = percentile(latencies, 0.50);
  result.p95_ms = percentile(latencies, 0.95);
  result.p99_ms = percentile(latencies, 0.99);
  result.p999_ms = percentile(latencies, 0.999);
  return result;
}

/// Thread-per-request baseline: `submitters` client threads each run the
/// full unbatched pipeline per request — allocating forward, single-query
/// symbolize + similarities.  Eval-mode forwards are pure reads, so
/// concurrent clients are safe (contended parallel_for callers run inline).
ModeResult drive_naive(serve::ModelBundle& bundle, const data::Dataset& requests,
                       int submitters, double seconds) {
  const hd::Similarity metric = bundle.nshd.config().similarity;
  {  // warm-up
    tensor::Tensor image = requests.sample(0);
    const tensor::Tensor activations = bundle.zoo.net.forward_to(image, bundle.cut);
    (void)bundle.nshd.classifier().similarities(
        bundle.nshd.symbolize(activations.data()), metric);
  }
  std::mutex latency_mutex;
  std::vector<double> latencies;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  util::Stopwatch watch;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> local;
      std::int64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        util::Stopwatch request_watch;
        tensor::Tensor image = requests.sample(i++ % requests.size());
        const tensor::Tensor activations =
            bundle.zoo.net.forward_to(image, bundle.cut);
        const std::vector<float> sims = bundle.nshd.classifier().similarities(
            bundle.nshd.symbolize(activations.data()), metric);
        (void)sims;
        local.push_back(request_watch.seconds() * 1e3);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  while (watch.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();

  ModeResult result;
  result.mode = "single";
  result.max_batch = 1;
  result.completed = completed.load();
  result.seconds = watch.seconds();
  result.qps = static_cast<double>(result.completed) / result.seconds;
  result.mean_batch = 1.0;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = percentile(latencies, 0.50);
  result.p95_ms = percentile(latencies, 0.95);
  result.p99_ms = percentile(latencies, 0.99);
  result.p999_ms = percentile(latencies, 0.999);
  return result;
}

struct Record {
  std::string model;
  std::size_t cut = 0;
  ModeResult single;
  ModeResult warm_single;
  ModeResult batched;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int submitters = args.get_int("submitters", 8);
  const int workers = args.get_int("workers", 2);
  const int reps = args.get_int("reps", 3);
  const double seconds = args.get_int("duration_ms", 2000) / 1000.0;
  const std::string json_path = args.get("json", "BENCH_serving.json");

  data::SynthCifarConfig data_config;
  data_config.num_classes = 4;
  data_config.samples_per_class = 24;  // 96 train images, reused as traffic
  const data::Dataset dataset = data::make_synth_cifar(data_config);

  std::vector<std::string> names = {"mobilenetv2s"};
  if (args.has("models")) names = {args.get("models", "")};
  if (args.has("all")) names = models::zoo_model_names();

  util::Table table({"model", "cut", "mode", "max_batch", "qps", "p50 ms",
                     "p95 ms", "p99 ms", "p99.9 ms", "mean batch", "shed",
                     "speedup"});
  std::vector<Record> records;

  for (const std::string& name : names) {
    // Serve at the deepest paper cut: it is the accuracy-preserving
    // deployment point, and its trailing layers (tiny spatial extent, wide
    // channels) are weight-streaming-bound — the regime where batching
    // amortizes memory traffic rather than relying on idle cores.
    const models::ZooModel probe = models::make_model(name, 4, /*seed=*/7);
    const std::size_t cut = probe.paper_cut_layers.back();

    // The three servers stay alive across reps; reps interleave the modes so
    // slow drifts on shared hosts hit all of them equally, and each mode
    // reports its best sustained rep (the same best-of discipline as
    // bench_inference_throughput).
    std::unique_ptr<serve::ModelBundle> naive_bundle =
        trained_bundle(name, cut, dataset, 1);

    serve::EngineConfig warm_config;
    warm_config.workers = workers;
    warm_config.max_batch = 1;
    warm_config.batch_deadline_ms = 0.0;  // nothing to coalesce at batch 1
    serve::Engine warm_engine(warm_config);
    warm_engine.register_model(name, trained_bundle(name, cut, dataset, 1));

    serve::EngineConfig batch_config;
    batch_config.workers = workers;
    batch_config.max_batch = submitters;
    batch_config.batch_deadline_ms = 2.0;
    serve::Engine batch_engine(batch_config);
    batch_engine.register_model(name, trained_bundle(name, cut, dataset, submitters));

    Record record;
    record.model = name;
    record.cut = cut;
    for (int rep = 0; rep < reps; ++rep) {
      const ModeResult naive = drive_naive(*naive_bundle, dataset, submitters, seconds);
      if (rep == 0 || naive.qps > record.single.qps) record.single = naive;
      const ModeResult warm =
          drive(warm_engine, name, dataset, "warm-single", submitters, seconds);
      if (rep == 0 || warm.qps > record.warm_single.qps) record.warm_single = warm;
      const ModeResult batched =
          drive(batch_engine, name, dataset, "batched", submitters, seconds);
      if (rep == 0 || batched.qps > record.batched.qps) record.batched = batched;
    }
    records.push_back(record);

    const double speedup = record.batched.qps / record.single.qps;
    for (const ModeResult* mode :
         {&record.single, &record.warm_single, &record.batched}) {
      table.add_row({name, util::cell(static_cast<int>(cut)), mode->mode,
                     util::cell(static_cast<int>(mode->max_batch)),
                     util::cell(mode->qps, 1), util::cell(mode->p50_ms, 2),
                     util::cell(mode->p95_ms, 2), util::cell(mode->p99_ms, 2),
                     util::cell(mode->p999_ms, 2),
                     util::cell(mode->mean_batch, 1),
                     util::cell(static_cast<int>(mode->rejected +
                                                 mode->rejected_overload)),
                     mode == &record.batched ? util::cell(speedup, 2) + "x" : ""});
    }
  }

  std::printf(
      "\n== serving throughput: %d submitters (closed loop), %d workers, "
      "%.1fs per mode ==\n%s",
      submitters, workers, seconds, table.to_string().c_str());

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n  \"submitters\": %d,\n  \"workers\": %d,\n"
                 "  \"cores\": %u,\n  \"duration_s\": %.2f,\n  \"results\": [\n",
                 submitters, workers, std::thread::hardware_concurrency(),
                 seconds);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const Record& r = records[i];
      const char* sep = i + 1 < records.size() ? "," : "";
      std::fprintf(out, "    {\"model\": \"%s\", \"cut\": %zu, \"modes\": [\n",
                   r.model.c_str(), r.cut);
      for (const ModeResult* m : {&r.single, &r.warm_single, &r.batched}) {
        std::fprintf(out,
                     "      {\"mode\": \"%s\", \"max_batch\": %lld, "
                     "\"qps\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                     "\"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                     "\"mean_batch\": %.2f, \"completed\": %llu, "
                     "\"rejected\": %llu, \"rejected_overload\": %llu, "
                     "\"timed_out\": %llu, \"internal_errors\": %llu, "
                     "\"degraded\": %llu}%s\n",
                     m->mode.c_str(), static_cast<long long>(m->max_batch),
                     m->qps, m->p50_ms, m->p95_ms, m->p99_ms, m->p999_ms,
                     m->mean_batch,
                     static_cast<unsigned long long>(m->completed),
                     static_cast<unsigned long long>(m->rejected),
                     static_cast<unsigned long long>(m->rejected_overload),
                     static_cast<unsigned long long>(m->timed_out),
                     static_cast<unsigned long long>(m->internal_errors),
                     static_cast<unsigned long long>(m->degraded),
                     m == &r.batched ? "" : ",");
      }
      std::fprintf(out, "    ], \"speedup_qps\": %.3f}%s\n",
                   r.batched.qps / r.single.qps, sep);
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n",
                 json_path.c_str());
  }
  return 0;
}
