// Fig. 8 — Impact of Knowledge Distillation on the Learning Accuracy.
//
// (a) Layer sweep on Efficientnetb0: NSHD accuracy with and without KD for
//     every feature-extraction cut — KD closes the gap to the CNN, most
//     visibly at early (weak) layers.
// (b) Summary over all backbones at their earliest paper cut.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::int64_t dim = args.get_int("dim", 3000);

  core::ExperimentContext context(bench::config_from_args(args));

  // (a) Efficientnetb0 layer sweep.
  {
    const std::string name = args.get("sweep_model", "efficientnet_b0s");
    models::ZooModel& m = context.model(name);
    const double cnn_acc = context.cnn_test_accuracy(name);
    util::Table table({"layer", "NSHD w/o KD", "NSHD w/ KD", "KD gain", "CNN"});
    for (std::size_t cut = 2; cut < m.feature_count; ++cut) {
      core::NshdConfig with_kd;
      with_kd.dim = dim;
      core::NshdConfig without_kd = with_kd;
      without_kd.use_kd = false;
      const auto kd = context.run_nshd(name, cut, with_kd);
      const auto plain = context.run_nshd(name, cut, without_kd);
      table.add_row({util::cell(static_cast<int>(cut)),
                     bench::run_cell(plain), bench::run_cell(kd),
                     bench::delta_cell(kd, plain), util::cell(cnn_acc, 4)});
    }
    bench::emit("Fig. 8a: KD impact per cut layer (" + models::display_name(name) + ")",
                table);
  }

  // (b) All models at the earliest paper cut.
  {
    util::Table table({"model", "layer", "w/o KD", "w/ KD", "KD gain"});
    for (const std::string& name : bench::models_from_args(args)) {
      models::ZooModel& m = context.model(name);
      const std::size_t cut = m.paper_cut_layers.front();
      core::NshdConfig with_kd;
      with_kd.dim = dim;
      core::NshdConfig without_kd = with_kd;
      without_kd.use_kd = false;
      const auto kd = context.run_nshd(name, cut, with_kd);
      const auto plain = context.run_nshd(name, cut, without_kd);
      table.add_row({models::display_name(name), util::cell(static_cast<int>(cut)),
                     bench::run_cell(plain), bench::run_cell(kd),
                     bench::delta_cell(kd, plain)});
    }
    bench::emit("Fig. 8b: KD impact across models (earliest paper cut)", table);
  }
  std::printf("Shape check: KD gains are largest where the cut features are "
              "weakest (early layers).\n");
  return 0;
}
