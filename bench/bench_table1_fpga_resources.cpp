// Table I — Design Acceleration on Xilinx ZCU104.
//
// Reports the DPU configuration's resource utilization, clock and power from
// the FPGA deployment model (the paper reads the same numbers out of the
// Vivado implementation of the DPU IP).
#include "bench_common.hpp"
#include "hw/fpga.hpp"

int main(int, char**) {
  using namespace nshd;

  const hw::FpgaModel fpga;
  util::Table table({"Resource", "Total", "Available", "Utilization"});
  for (const hw::ResourceRow& row : hw::FpgaModel::resource_utilization()) {
    table.add_row({row.resource, util::format_count(row.used),
                   util::format_count(row.available),
                   util::cell(row.utilization() * 100.0, 2) + "%"});
  }
  bench::emit("Table I: DPU resource utilization on ZCU104", table);

  std::printf("Frequency: %.0fMHz\nPower: %.3fW\n",
              fpga.config().frequency_hz / 1e6, fpga.config().power_watts);
  std::printf("(paper: 200MHz, 4.427W; LUT 36.87%%, FF 31.80%%, BRAM 71.79%%, "
              "URAM 41.67%%, DSP 48.84%%)\n");
  return 0;
}
