// Streaming online learning: accuracy-over-time under drift, and the price
// of concurrent updates on the read path.
//
// Two questions, two harnesses:
//
//   accuracy-over-time   For each drift mode (none / label-noise / shift /
//                        novel-class) a DriftStream feeds chunks through the
//                        NSHD encoder into a hd::VersionedBank.  Evaluation
//                        is prequential (test-then-train): each chunk is
//                        first scored against the *published* bank with the
//                        chunk's clean labels, then submitted as a MASS
//                        update with the labels the learner actually sees
//                        (corrupted ones under label noise).  Novel classes
//                        trigger add_class() on first sight.  The guard
//                        holdout is the stationary test split, so collapsing
//                        updates (late label-noise chunks) roll back and are
//                        counted rather than served.
//
//   reader QPS           N reader threads hammer batched similarities off
//                        bank.snapshot() for a fixed duration, once with the
//                        writer quiesced and once with a writer publishing
//                        MASS updates as fast as it can.  The ratio is the
//                        cost of updates-in-flight on the zero-lock read
//                        path (ideally ~1.0: readers never block on
//                        writers).
//
// Results land on stdout as tables and in BENCH_online.json.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "core/nshd.hpp"
#include "data/drift_stream.hpp"
#include "data/synth_cifar.hpp"
#include "hd/versioned_bank.hpp"
#include "models/zoo.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace nshd;

constexpr std::int64_t kBaseClasses = 4;
constexpr std::uint64_t kModelSeed = 7;

struct StepPoint {
  std::int64_t step = 0;
  double accuracy = 0.0;   // prequential, against clean labels
  float label_noise = 0.0f;
  float drift01 = 0.0f;
  std::uint64_t rollbacks = 0;  // cumulative through this step
};

struct ModeRun {
  std::string mode;
  std::vector<StepPoint> points;
  std::uint64_t updates_ok = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t classes_added = 0;
};

/// Symbolizes a chunk through the trained encoder (extractor + manifold +
/// projection); the bank then learns purely in hypervector space.
std::vector<hd::Hypervector> symbolize(core::NshdModel& nshd,
                                       models::ZooModel& zoo, std::size_t cut,
                                       const data::Dataset& ds) {
  const core::ExtractedFeatures features =
      core::extract_features(zoo, cut, ds, /*batch_size=*/32);
  return nshd.symbolize_all(features);
}

ModeRun run_stream(data::DriftMode mode, core::NshdModel& nshd,
                   models::ZooModel& zoo, std::size_t cut,
                   const hd::UpdateGuard& guard, std::int64_t steps,
                   std::int64_t chunk_size) {
  data::DriftStreamConfig stream_config;
  stream_config.base.num_classes = kBaseClasses;
  stream_config.mode = mode;
  stream_config.steps = steps;
  stream_config.chunk_size = chunk_size;
  stream_config.novel_classes = 2;
  stream_config.novel_class_at = steps / 2;
  const data::DriftStream stream(stream_config);

  hd::VersionedBank bank(nshd.classifier());
  bank.set_guard(guard);
  hd::MassConfig mass;
  mass.learning_rate = 0.02f;

  ModeRun run;
  run.mode = data::to_string(mode);
  for (std::int64_t step = 0; step < steps; ++step) {
    const data::DriftChunk chunk = stream.chunk(step);
    const std::vector<hd::Hypervector> queries =
        symbolize(nshd, zoo, cut, chunk.data);

    // Test (prequential): published bank vs the chunk's clean labels.
    // Unseen novel classes simply score as errors until add_class runs.
    const std::vector<std::int64_t> predicted =
        bank.snapshot()->bank.predict_all(queries);
    std::int64_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
      if (predicted[i] == chunk.clean_labels[i]) ++correct;

    // Then train: grow the bank for any first-seen class (one-shot bundle
    // of that class's chunk samples), then one gated MASS epoch.
    for (std::int64_t label = bank.num_classes();
         label < chunk.data.num_classes; ++label) {
      std::vector<hd::Hypervector> shots;
      for (std::size_t i = 0; i < queries.size(); ++i)
        if (chunk.data.labels[i] == label) shots.push_back(queries[i]);
      if (shots.empty()) continue;
      if (bank.add_class(shots) == hd::UpdateStatus::kOk) {
        ++run.classes_added;
        ++run.updates_ok;
      }
    }
    const hd::UpdateStatus status =
        bank.mass_epoch(queries, chunk.data.labels, mass);
    if (status == hd::UpdateStatus::kOk)
      ++run.updates_ok;
    else if (status != hd::UpdateStatus::kBadArgs)
      ++run.rollbacks;

    StepPoint point;
    point.step = step;
    point.accuracy = static_cast<double>(correct) /
                     static_cast<double>(predicted.size());
    point.label_noise = chunk.label_noise;
    point.drift01 = chunk.drift01;
    point.rollbacks = run.rollbacks;
    run.points.push_back(point);
  }
  return run;
}

struct QpsResult {
  double quiesced_qps = 0.0;
  double inflight_qps = 0.0;
  std::uint64_t updates_published = 0;
  std::uint64_t rollbacks = 0;
};

/// `readers` threads loop batched similarities off the published snapshot
/// for `seconds`; when `writer` is true, one writer concurrently publishes
/// MASS updates as fast as it can.  Returns queries scored per second.
double drive_readers(hd::VersionedBank& bank,
                     const std::vector<hd::Hypervector>& queries,
                     const std::vector<std::int64_t>& labels, int readers,
                     double seconds, bool writer, QpsResult* result) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scored{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const hd::VersionedBank::Snapshot snap = bank.snapshot();
        (void)snap->bank.similarities_all(queries);
        scored.fetch_add(queries.size(), std::memory_order_relaxed);
      }
    });
  }
  std::thread writer_thread;
  if (writer) {
    writer_thread = std::thread([&] {
      hd::MassConfig mass;
      mass.learning_rate = 0.005f;
      while (!stop.load(std::memory_order_relaxed)) {
        if (bank.mass_epoch(queries, labels, mass) == hd::UpdateStatus::kOk)
          ++result->updates_published;
        else
          ++result->rollbacks;
      }
    });
  }
  util::Stopwatch watch;
  while (watch.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  if (writer_thread.joinable()) writer_thread.join();
  return static_cast<double>(scored.load()) / watch.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::int64_t steps = args.get_int("steps", 10);
  const std::int64_t chunk_size = args.get_int("chunk", 48);
  const int readers = args.get_int("readers", 4);
  const double seconds = args.get_int("duration_ms", 800) / 1000.0;
  const std::string json_path = args.get("json", "BENCH_online.json");
  const std::string model_name = args.get("model", "mobilenetv2s");

  // One trained NSHD deployment shared by every mode: the streams all start
  // from the same stationary base distribution.
  models::ZooModel zoo = models::make_model(model_name, kBaseClasses, kModelSeed);
  const std::size_t cut = 4;
  core::NshdConfig nshd_config;
  nshd_config.dim = 512;
  nshd_config.manifold_features = 32;
  nshd_config.epochs = 6;
  nshd_config.use_kd = false;
  nshd_config.train_manifold = false;
  core::NshdModel nshd(zoo, cut, nshd_config);

  data::SynthCifarConfig base;
  base.num_classes = kBaseClasses;
  base.samples_per_class = 40;
  const data::TrainTest split = data::make_synth_cifar_split(base, 12);
  {
    const core::ExtractedFeatures features =
        core::extract_features(zoo, cut, split.train, 32);
    nshd.train(features, split.train.labels, /*teacher_logits=*/nullptr);
  }

  // Guard holdout: the stationary test split in encoder space.  Collapsing
  // updates (heavy label noise) roll back against this reference.
  hd::UpdateGuard guard;
  guard.holdout = symbolize(nshd, zoo, cut, split.test);
  guard.holdout_labels = split.test.labels;
  guard.max_accuracy_drop = 0.20;

  const data::DriftMode modes[] = {
      data::DriftMode::kNone, data::DriftMode::kLabelNoise,
      data::DriftMode::kShift, data::DriftMode::kNovelClass};
  std::vector<ModeRun> runs;
  util::Table table({"mode", "step", "accuracy", "label noise", "drift",
                     "rollbacks"});
  for (const data::DriftMode mode : modes) {
    runs.push_back(run_stream(mode, nshd, zoo, cut, guard, steps, chunk_size));
    for (const StepPoint& point : runs.back().points) {
      table.add_row({runs.back().mode, util::cell(static_cast<int>(point.step)),
                     util::cell(point.accuracy, 3),
                     util::cell(static_cast<double>(point.label_noise), 2),
                     util::cell(static_cast<double>(point.drift01), 2),
                     util::cell(static_cast<int>(point.rollbacks))});
    }
  }
  std::printf("\n== accuracy over time: %lld-step streams, chunk %lld ==\n%s",
              static_cast<long long>(steps), static_cast<long long>(chunk_size),
              table.to_string().c_str());

  // Reader throughput: quiesced vs updates-in-flight, same bank and query
  // batch.  The in-flight writer republishes the same chunk, so reader work
  // per query is constant across both phases.
  QpsResult qps;
  hd::VersionedBank bank(nshd.classifier());
  qps.quiesced_qps = drive_readers(bank, guard.holdout, guard.holdout_labels,
                                   readers, seconds, /*writer=*/false, &qps);
  qps.inflight_qps = drive_readers(bank, guard.holdout, guard.holdout_labels,
                                   readers, seconds, /*writer=*/true, &qps);
  const double ratio = qps.quiesced_qps > 0.0
                           ? qps.inflight_qps / qps.quiesced_qps
                           : 0.0;
  std::printf(
      "\n== reader QPS (%d readers, %.1fs per phase) ==\n"
      "quiesced          %.0f queries/s\n"
      "updates in flight %.0f queries/s (%.2fx, %llu versions published)\n",
      readers, seconds, qps.quiesced_qps, qps.inflight_qps, ratio,
      static_cast<unsigned long long>(qps.updates_published));

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n  \"model\": \"%s\",\n  \"steps\": %lld,\n"
                 "  \"chunk_size\": %lld,\n  \"accuracy_over_time\": [\n",
                 model_name.c_str(), static_cast<long long>(steps),
                 static_cast<long long>(chunk_size));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ModeRun& run = runs[i];
      std::fprintf(out,
                   "    {\"mode\": \"%s\", \"updates_ok\": %llu, "
                   "\"rollbacks\": %llu, \"classes_added\": %llu, "
                   "\"steps\": [\n",
                   run.mode.c_str(),
                   static_cast<unsigned long long>(run.updates_ok),
                   static_cast<unsigned long long>(run.rollbacks),
                   static_cast<unsigned long long>(run.classes_added));
      for (std::size_t j = 0; j < run.points.size(); ++j) {
        const StepPoint& point = run.points[j];
        std::fprintf(out,
                     "      {\"step\": %lld, \"accuracy\": %.4f, "
                     "\"label_noise\": %.3f, \"drift\": %.3f, "
                     "\"rollbacks\": %llu}%s\n",
                     static_cast<long long>(point.step), point.accuracy,
                     static_cast<double>(point.label_noise),
                     static_cast<double>(point.drift01),
                     static_cast<unsigned long long>(point.rollbacks),
                     j + 1 < run.points.size() ? "," : "");
      }
      std::fprintf(out, "    ]}%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"reader_qps\": {\"readers\": %d, "
                 "\"duration_s\": %.2f, \"quiesced_qps\": %.1f, "
                 "\"inflight_qps\": %.1f, \"inflight_ratio\": %.3f, "
                 "\"updates_published\": %llu, \"writer_rollbacks\": %llu}\n}\n",
                 readers, seconds, qps.quiesced_qps, qps.inflight_qps, ratio,
                 static_cast<unsigned long long>(qps.updates_published),
                 static_cast<unsigned long long>(qps.rollbacks));
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n",
                 json_path.c_str());
  }
  return 0;
}
