// Table II — Model Size (Learning Parameters) Comparison.
//
// Uses the full-scale architecture descriptors (real VGG16 / MobileNetV2 /
// EfficientNet-B0/B7 at 224x224) and the paper's accounting:
//   CNN        = (params - final prediction FC) * 4 bytes
//   NSHD       = prefix params*4B + manifold FC*4B + projection bits + class HVs
//   BaselineHD = prefix params*4B + projection over raw features + class HVs
// This reproduces the paper's absolute numbers to within ~1-2%.
#include "bench_common.hpp"
#include "hw/fullscale.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  const util::CliArgs args(argc, argv);
  const std::int64_t dim = args.get_int("dim", 3000);
  const std::int64_t f_hat = args.get_int("fhat", 100);
  const std::int64_t classes = args.get_int("classes", 10);

  struct Row {
    const char* zoo_name;
    std::vector<std::size_t> cuts;
  };
  const std::vector<Row> rows = {
      {"vgg16s", {27, 29}},
      {"efficientnet_b0s", {5, 6, 7, 8}},
      {"efficientnet_b7s", {6, 7, 8}},
      {"mobilenetv2s", {14, 17}},
  };

  auto mb = [](double bytes) { return util::cell(bytes / 1e6, 2) + "MB"; };

  util::Table table({"Model", "Layer", "CNN", "NSHD", "BaselineHD"});
  for (const Row& row : rows) {
    const hw::ArchModel arch = hw::fullscale_for(row.zoo_name);
    for (std::size_t cut : row.cuts) {
      const hw::SizeReport r = hw::model_size_report(arch, cut, dim, f_hat, classes);
      table.add_row({arch.name, util::cell(static_cast<int>(cut)),
                     mb(r.cnn_bytes), mb(r.nshd_bytes), mb(r.baseline_bytes)});
    }
  }
  bench::emit("Table II: model size comparison (full-scale architectures)", table);
  std::printf("(paper, for reference: VGG16@29 537.2/69.05/96.61MB, "
              "Efficientnetb0@5 16.08/5.76/11.75MB, Mobilenetv2@14 "
              "8.94/3.52/5.85MB)\n");
  return 0;
}
