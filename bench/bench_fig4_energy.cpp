// Fig. 4 — Percentage Improvements on Energy Efficiency.
//
// For every backbone and its two energy-study cut layers, computes the
// energy of one NSHD inference vs one full-CNN inference under the
// embedded-GPU energy model, on both the 10-class and 100-class tasks
// (class count changes only the similarity stage and class-bank size).
//
// Paper shape: savings grow as the cut moves earlier; VGG16@27 saves the
// most (64% in the paper's testbed).
#include "bench_common.hpp"
#include "hw/census.hpp"
#include "hw/energy.hpp"
#include "hw/gpu.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  const util::CliArgs args(argc, argv);
  const std::int64_t dim = args.get_int("dim", 3000);
  const std::int64_t f_hat = args.get_int("fhat", 100);
  const auto coeffs = hw::EnergyCoefficients::xavier_like();
  const hw::GpuModel gpu;

  util::Table table({"model", "layer", "SynthCIFAR-10", "SynthCIFAR-100",
                     "exec-time reduction"});
  double best = 0.0;
  std::string best_label;
  for (const std::string& name : bench::models_from_args(args)) {
    models::ZooModel m = models::make_model(name, 10, 1);
    const hw::CnnCensus cnn = hw::cnn_census(m);
    const hw::EnergyBreakdown cnn_e = hw::cnn_energy(cnn, coeffs);
    for (std::size_t cut : m.energy_cut_layers) {
      std::vector<std::string> row{models::display_name(name),
                                   util::cell(static_cast<int>(cut))};
      for (std::int64_t classes : {10, 100}) {
        const hw::NshdCensus census = hw::nshd_census(m, cut, dim, f_hat, classes);
        const double improvement =
            hw::energy_improvement(cnn_e, hw::nshd_energy(census, coeffs));
        row.push_back(util::cell(improvement * 100.0, 1) + "%");
        if (improvement > best) {
          best = improvement;
          best_label = models::display_name(name) + "@" + std::to_string(cut);
        }
      }
      // Abstract headline metric: execution-time reduction on the GPU model.
      const hw::NshdCensus census = hw::nshd_census(m, cut, dim, f_hat, 10);
      row.push_back(util::cell(
          gpu.time_reduction(cnn, m.net.size(), census, cut + 1) * 100.0, 1) + "%");
      table.add_row(std::move(row));
    }
  }
  bench::emit("Fig. 4: energy-efficiency improvement of NSHD over the CNN", table);
  std::printf("Best saving: %.1f%% (%s); paper reports up to 64%% (VGG16@27).\n",
              best * 100.0, best_label.c_str());
  std::printf("Shape check: savings increase for earlier cut layers.\n");
  return 0;
}
