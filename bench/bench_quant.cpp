// INT8 quantized inference: throughput, accuracy cost, and the FPGA
// cross-check.
//
// Part 1 (throughput): for every zoo model and paper cut this harness
// extracts features from the same dataset through the f32 InferencePlan and
// the calibrated QuantizedInferencePlan at a fixed thread count (default 1,
// the acceptance configuration) and reports samples/sec for both.  Before
// timing, the int8 path is gated: outputs must be bitwise deterministic
// across repeated runs, a plan with no int8 layers must match the f32 plan
// bit for bit, and a plan with int8 layers must stay within a small relative
// L2 error of f32.  Each row also carries hw::quant_cross_check — the
// DPU-model analytic INT8 throughput for the same prefix against the
// measured CPU number.
//
// Part 2 (accuracy, skipped with --no_accuracy): the fig7/fig10 experiment
// context trains NSHD per model at its deepest paper cut and evaluates the
// same trained HD head on f32 and int8 features.  A top-1 drop beyond
// --max_drop_pp (default 1.0) percentage points is FATAL.
//
// Results land on stdout as tables and in BENCH_quant.json.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "hw/census.hpp"
#include "hw/fpga.hpp"
#include "models/zoo.hpp"
#include "nn/plan.hpp"
#include "nn/quant_plan.hpp"
#include "tensor/simd.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nshd;

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

double relative_l2(const tensor::Tensor& x, const tensor::Tensor& ref) {
  double err = 0.0, norm = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(ref[i]);
    err += d * d;
    norm += static_cast<double>(ref[i]) * static_cast<double>(ref[i]);
  }
  return norm > 0.0 ? std::sqrt(err / norm) : std::sqrt(err);
}

struct ThroughputRecord {
  std::string model;
  std::size_t cut = 0;
  double f32_sps = 0.0;
  double int8_sps = 0.0;
  std::int64_t int8_layers = 0;
  std::int64_t fallback_layers = 0;
  double rel_l2 = 0.0;
  std::size_t planned_bytes = 0;
  std::size_t peak_bytes = 0;
  double analytic_fps = 0.0;
  double analytic_over_measured = 0.0;
};

struct AccuracyRecord {
  std::string model;
  std::size_t cut = 0;
  bool failed = false;
  double f32_accuracy = 0.0;
  double int8_accuracy = 0.0;
  double drop_pp = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  const std::int64_t batch = args.get_int("batch", 32);
  const int reps = args.get_int("reps", 3);
  const int threads = args.get_int("threads", 1);
  const double max_drop_pp = args.get_double("max_drop_pp", 1.0);
  const double min_speedup = args.get_double("min_speedup", 1.8);
  const std::string json_path = args.get("json", "BENCH_quant.json");
  const bool with_accuracy = !args.has("no_accuracy");

  util::set_thread_count(threads);

  data::SynthCifarConfig data_config;
  data_config.num_classes = 4;
  data_config.samples_per_class = args.get_int("per_class", 24);  // 96 samples
  const data::Dataset dataset = data::make_synth_cifar(data_config);
  const double n = static_cast<double>(dataset.size());

  std::vector<std::string> names = models::zoo_model_names();
  if (args.has("models")) names = bench::models_from_args(args);

  const hw::FpgaModel fpga;
  bool fatal = false;
  double best_int8_speedup = 0.0;

  util::Table table({"model", "cut", "f32 sps", "int8 sps", "speedup",
                     "int8/f32 layers", "rel L2", "DPU/CPU"});
  std::vector<ThroughputRecord> records;

  for (const std::string& name : names) {
    models::ZooModel model = models::make_model(name, 4, /*seed=*/7);
    for (const std::size_t cut : model.paper_cut_layers) {
      nn::InferencePlan plan(model.net, model.input_chw, cut, batch);
      nn::QuantizedInferencePlan qplan(model.net, model.input_chw, cut, batch);
      const nn::CalibrationReport& report =
          qplan.calibrate(dataset.images.view(), batch);
      if (!report.clean()) {
        std::fprintf(stderr, "FATAL: %s cut=%zu calibration fallbacks on clean data\n",
                     name.c_str(), cut);
        fatal = true;
        continue;
      }

      // Warm-up + gates before any timing.
      const core::ExtractedFeatures f32_feats =
          core::extract_features(plan, dataset, batch);
      const core::ExtractedFeatures int8_feats =
          core::extract_features(qplan, dataset, batch);
      const core::ExtractedFeatures int8_again =
          core::extract_features(qplan, dataset, batch);
      if (!bitwise_equal(int8_feats.values, int8_again.values)) {
        std::fprintf(stderr, "FATAL: %s cut=%zu int8 output not deterministic\n",
                     name.c_str(), cut);
        fatal = true;
        continue;
      }
      const double rel = relative_l2(int8_feats.values, f32_feats.values);
      if (report.int8_layers == 0) {
        // Full-fallback plan: must be the f32 plan, bit for bit.
        if (!bitwise_equal(int8_feats.values, f32_feats.values)) {
          std::fprintf(stderr, "FATAL: %s cut=%zu all-fallback plan != f32 plan\n",
                       name.c_str(), cut);
          fatal = true;
          continue;
        }
      } else if (rel > 0.15) {
        std::fprintf(stderr, "FATAL: %s cut=%zu int8 rel L2 %.4f exceeds 0.15\n",
                     name.c_str(), cut, rel);
        fatal = true;
        continue;
      }

      const double f32_s = best_seconds(
          reps, [&] { core::extract_features(plan, dataset, batch); });
      const double int8_s = best_seconds(
          reps, [&] { core::extract_features(qplan, dataset, batch); });

      ThroughputRecord rec;
      rec.model = name;
      rec.cut = cut;
      rec.f32_sps = n / f32_s;
      rec.int8_sps = n / int8_s;
      rec.int8_layers = report.int8_layers;
      rec.fallback_layers = report.fallback_layers;
      rec.rel_l2 = rel;
      rec.planned_bytes = qplan.planned_workspace_bytes();
      rec.peak_bytes = qplan.peak_workspace_bytes();
      const hw::QuantCrossCheck check = hw::quant_cross_check(
          fpga, hw::nshd_census(model, cut, 3000, 100, dataset.num_classes),
          cut + 1, rec.int8_sps);
      rec.analytic_fps = check.analytic_fps;
      rec.analytic_over_measured = check.analytic_over_measured;
      if (rec.int8_layers > 0)
        best_int8_speedup = std::max(best_int8_speedup, rec.int8_sps / rec.f32_sps);
      records.push_back(rec);

      table.add_row({name, util::cell(static_cast<int>(cut)),
                     util::cell(rec.f32_sps, 1), util::cell(rec.int8_sps, 1),
                     util::cell(rec.int8_sps / rec.f32_sps, 2) + "x",
                     util::cell(static_cast<int>(rec.int8_layers)) + "/" +
                         util::cell(static_cast<int>(rec.fallback_layers)),
                     util::cell(rec.rel_l2, 4),
                     util::cell(rec.analytic_over_measured, 1) + "x"});
    }
  }

  std::printf("\n== int8 vs f32 planned throughput, batch %lld, %d thread(s) ==\n%s",
              static_cast<long long>(batch), threads, table.to_string().c_str());

  if (best_int8_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FATAL: best int8 speedup %.2fx below the %.2fx floor "
                 "(no int8-capable model met the target)\n",
                 best_int8_speedup, min_speedup);
    fatal = true;
  }

  // Part 2: accuracy cost on the fig7/fig10 experiment context.
  std::vector<AccuracyRecord> accuracy;
  if (with_accuracy) {
    core::ExperimentContext context(bench::config_from_args(args));
    util::Table acc_table({"model", "cut", "NSHD f32", "NSHD int8", "drop"});
    for (const std::string& name : names) {
      models::ZooModel& m = context.model(name);
      const std::size_t cut = m.paper_cut_layers.back();
      const auto run = context.run_nshd(name, cut, core::NshdConfig{},
                                        /*with_quantized=*/true);
      AccuracyRecord rec;
      rec.model = name;
      rec.cut = cut;
      rec.failed = run.failed;
      if (!run.failed) {
        rec.f32_accuracy = run.test_accuracy;
        rec.int8_accuracy = run.quantized_test_accuracy;
        rec.drop_pp = (run.test_accuracy - run.quantized_test_accuracy) * 100.0;
        if (rec.drop_pp > max_drop_pp) {
          std::fprintf(stderr,
                       "FATAL: %s cut=%zu int8 top-1 drop %.2fpp exceeds %.2fpp\n",
                       name.c_str(), cut, rec.drop_pp, max_drop_pp);
          fatal = true;
        }
      } else {
        std::fprintf(stderr, "FATAL: %s cut=%zu accuracy run failed: %s\n",
                     name.c_str(), cut, run.error.c_str());
        fatal = true;
      }
      accuracy.push_back(rec);
      acc_table.add_row({models::display_name(name), util::cell(static_cast<int>(cut)),
                         run.failed ? "FAILED" : util::cell(rec.f32_accuracy, 4),
                         run.failed ? "FAILED" : util::cell(rec.int8_accuracy, 4),
                         run.failed ? "n/a" : util::cell(rec.drop_pp, 2) + "pp"});
    }
    bench::emit("int8 accuracy cost on SynthCIFAR-" +
                    std::to_string(context.num_classes()),
                acc_table);
  }

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    {
      bench::JsonWriter json(out);
      json.begin_object();
      json.field("isa", tensor::simd::kIsaName);
      json.field("batch", batch);
      json.field("threads", threads);
      json.field("samples", dataset.size());
      json.begin_array("throughput");
      for (const ThroughputRecord& r : records) {
        json.begin_object();
        json.field("model", r.model);
        json.field("cut", r.cut);
        json.field("f32_samples_per_sec", r.f32_sps, 2);
        json.field("int8_samples_per_sec", r.int8_sps, 2);
        json.field("speedup", r.int8_sps / r.f32_sps, 3);
        json.field("int8_layers", r.int8_layers);
        json.field("fallback_layers", r.fallback_layers);
        json.field("relative_l2_vs_f32", r.rel_l2, 5);
        json.field("planned_workspace_bytes", r.planned_bytes);
        json.field("peak_workspace_bytes", r.peak_bytes);
        json.field("fpga_analytic_fps", r.analytic_fps, 1);
        json.field("fpga_analytic_over_measured", r.analytic_over_measured, 2);
        json.end_object();
      }
      json.end_array();
      if (with_accuracy) {
        json.begin_array("accuracy");
        for (const AccuracyRecord& r : accuracy) {
          json.begin_object();
          json.field("model", r.model);
          json.field("cut", r.cut);
          json.field("failed", r.failed);
          json.field("f32_accuracy", r.f32_accuracy, 4);
          json.field("int8_accuracy", r.int8_accuracy, 4);
          json.field("top1_drop_pp", r.drop_pp, 2);
          json.end_object();
        }
        json.end_array();
      }
      json.end_object();
    }
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n", json_path.c_str());
  }
  return fatal ? 1 : 0;
}
