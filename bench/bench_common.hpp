// Shared plumbing for the per-table/per-figure bench harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace nshd::bench {

/// Streaming writer for the committed BENCH_*.json artifacts.  Tracks the
/// open container stack so commas and indentation come out right; numeric
/// fields take an explicit precision so the files stay diff-stable across
/// reruns.  The writer does not own the FILE*; destroy it before fclose.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out) : out_(out) { stack_.push_back(false); }
  ~JsonWriter() { std::fputc('\n', out_); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object(const char* key = nullptr) { open(key, '{'); }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) { open(key, '['); }
  void end_array() { close(']'); }

  void field(const char* key, const char* value) {
    prefix(key);
    std::fprintf(out_, "\"%s\"", value);
  }
  void field(const char* key, const std::string& value) {
    field(key, value.c_str());
  }
  void field(const char* key, double value, int precision) {
    prefix(key);
    std::fprintf(out_, "%.*f", precision, value);
  }
  void field(const char* key, std::int64_t value) {
    prefix(key);
    std::fprintf(out_, "%lld", static_cast<long long>(value));
  }
  void field(const char* key, std::size_t value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(const char* key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(const char* key, bool value) {
    prefix(key);
    std::fputs(value ? "true" : "false", out_);
  }

 private:
  void prefix(const char* key) {
    if (stack_.back())
      std::fputs(",\n", out_);
    else if (stack_.size() > 1)
      std::fputc('\n', out_);
    stack_.back() = true;
    for (std::size_t i = 1; i < stack_.size(); ++i) std::fputs("  ", out_);
    if (key) std::fprintf(out_, "\"%s\": ", key);
  }
  void open(const char* key, char bracket) {
    prefix(key);
    std::fputc(bracket, out_);
    stack_.push_back(false);
  }
  void close(char bracket) {
    const bool had_items = stack_.back();
    stack_.pop_back();
    if (had_items) {
      std::fputc('\n', out_);
      for (std::size_t i = 1; i < stack_.size(); ++i) std::fputs("  ", out_);
    }
    std::fputc(bracket, out_);
  }

  std::FILE* out_;
  std::vector<bool> stack_;  // per open container: already holds an item?
};

/// Standard context for accuracy benches: SynthCIFAR with the repo-default
/// teacher schedule; honors --classes, --train_per_class, --test_per_class.
inline core::ExperimentConfig config_from_args(const util::CliArgs& args,
                                               std::int64_t default_classes = 10) {
  core::ExperimentConfig config = core::ExperimentConfig::standard(
      args.get_int("classes", static_cast<int>(default_classes)));
  if (args.has("train_per_class"))
    config.dataset.samples_per_class = args.get_int("train_per_class", 200);
  if (args.has("test_per_class"))
    config.test_samples_per_class = args.get_int("test_per_class", 50);
  return config;
}

/// Model list from --models=a,b,c (default: the full paper set).
inline std::vector<std::string> models_from_args(const util::CliArgs& args) {
  if (!args.has("models")) return models::zoo_model_names();
  std::vector<std::string> out;
  std::string csv = args.get("models", "");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = csv.find(',', pos);
    const std::string token = csv.substr(pos, next == std::string::npos ? next : next - pos);
    if (!token.empty()) out.push_back(token);
    pos = next == std::string::npos ? next : next + 1;
  }
  return out;
}

/// Prints the table plus a one-line provenance header.
inline void emit(const std::string& title, const util::Table& table) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.to_string().c_str());
  std::fflush(stdout);
}

/// Accuracy cell for a sweep row: a failed (model, cut) config renders as
/// "FAILED" instead of aborting the bench, so one bad cell never costs the
/// rest of the sweep.
inline std::string run_cell(const core::ExperimentContext::NshdRun& run,
                            int precision = 4) {
  return run.failed ? "FAILED" : util::cell(run.test_accuracy, precision);
}

/// Accuracy-delta cell (in percentage points) between two runs; "n/a" when
/// either side failed.
inline std::string delta_cell(const core::ExperimentContext::NshdRun& lhs,
                              const core::ExperimentContext::NshdRun& rhs,
                              int precision = 2) {
  if (lhs.failed || rhs.failed) return "n/a";
  return util::cell((lhs.test_accuracy - rhs.test_accuracy) * 100.0, precision) +
         "pp";
}

}  // namespace nshd::bench
