// Shared plumbing for the per-table/per-figure bench harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace nshd::bench {

/// Standard context for accuracy benches: SynthCIFAR with the repo-default
/// teacher schedule; honors --classes, --train_per_class, --test_per_class.
inline core::ExperimentConfig config_from_args(const util::CliArgs& args,
                                               std::int64_t default_classes = 10) {
  core::ExperimentConfig config = core::ExperimentConfig::standard(
      args.get_int("classes", static_cast<int>(default_classes)));
  if (args.has("train_per_class"))
    config.dataset.samples_per_class = args.get_int("train_per_class", 200);
  if (args.has("test_per_class"))
    config.test_samples_per_class = args.get_int("test_per_class", 50);
  return config;
}

/// Model list from --models=a,b,c (default: the full paper set).
inline std::vector<std::string> models_from_args(const util::CliArgs& args) {
  if (!args.has("models")) return models::zoo_model_names();
  std::vector<std::string> out;
  std::string csv = args.get("models", "");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = csv.find(',', pos);
    const std::string token = csv.substr(pos, next == std::string::npos ? next : next - pos);
    if (!token.empty()) out.push_back(token);
    pos = next == std::string::npos ? next : next + 1;
  }
  return out;
}

/// Prints the table plus a one-line provenance header.
inline void emit(const std::string& title, const util::Table& table) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace nshd::bench
