// Shared plumbing for the per-table/per-figure bench harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace nshd::bench {

/// Standard context for accuracy benches: SynthCIFAR with the repo-default
/// teacher schedule; honors --classes, --train_per_class, --test_per_class.
inline core::ExperimentConfig config_from_args(const util::CliArgs& args,
                                               std::int64_t default_classes = 10) {
  core::ExperimentConfig config = core::ExperimentConfig::standard(
      args.get_int("classes", static_cast<int>(default_classes)));
  if (args.has("train_per_class"))
    config.dataset.samples_per_class = args.get_int("train_per_class", 200);
  if (args.has("test_per_class"))
    config.test_samples_per_class = args.get_int("test_per_class", 50);
  return config;
}

/// Model list from --models=a,b,c (default: the full paper set).
inline std::vector<std::string> models_from_args(const util::CliArgs& args) {
  if (!args.has("models")) return models::zoo_model_names();
  std::vector<std::string> out;
  std::string csv = args.get("models", "");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = csv.find(',', pos);
    const std::string token = csv.substr(pos, next == std::string::npos ? next : next - pos);
    if (!token.empty()) out.push_back(token);
    pos = next == std::string::npos ? next : next + 1;
  }
  return out;
}

/// Prints the table plus a one-line provenance header.
inline void emit(const std::string& title, const util::Table& table) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.to_string().c_str());
  std::fflush(stdout);
}

/// Accuracy cell for a sweep row: a failed (model, cut) config renders as
/// "FAILED" instead of aborting the bench, so one bad cell never costs the
/// rest of the sweep.
inline std::string run_cell(const core::ExperimentContext::NshdRun& run,
                            int precision = 4) {
  return run.failed ? "FAILED" : util::cell(run.test_accuracy, precision);
}

/// Accuracy-delta cell (in percentage points) between two runs; "n/a" when
/// either side failed.
inline std::string delta_cell(const core::ExperimentContext::NshdRun& lhs,
                              const core::ExperimentContext::NshdRun& rhs,
                              int precision = 2) {
  if (lhs.failed || rhs.failed) return "n/a";
  return util::cell((lhs.test_accuracy - rhs.test_accuracy) * 100.0, precision) +
         "pp";
}

}  // namespace nshd::bench
