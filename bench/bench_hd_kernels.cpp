// HD kernel throughput: scalar-reference vs SIMD implementations.
//
// Covers the operations the paper accelerates with CUDA constant memory
// (Sec. VI-A): random-projection encode/decode, float-vs-packed similarity,
// the MASS update primitive (axpy), binary-binary Hamming similarity, and
// batched bank prediction.  Each kernel is timed against a scalar reference
// that reproduces the pre-SIMD repository algorithm (per-set-bit
// countr_zero walks, single-accumulator popcount) on identical data, with a
// parity check before timing; the harness exits non-zero on any parity
// failure.  Results land on stdout and in BENCH_hd.json — the projection
// encode row at dim=10000 is the ISSUE 5 gate (>= 3x).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "hd/projection.hpp"
#include "tensor/simd.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace nshd;

std::vector<float> random_values(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

/// Rebuilds a projection's packed bit matrix via element(), so the scalar
/// reference runs the old algorithm on the same storage layout.
struct PackedMatrix {
  std::int64_t rows = 0, cols = 0, words_per_row = 0;
  std::vector<std::uint64_t> bits;

  explicit PackedMatrix(const hd::RandomProjection& proj)
      : rows(proj.dim()), cols(proj.features()), words_per_row((proj.features() + 63) / 64) {
    bits.assign(static_cast<std::size_t>(rows * words_per_row), 0);
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < cols; ++c)
        if (proj.element(r, c) > 0.0f)
          bits[static_cast<std::size_t>(r * words_per_row + (c >> 6))] |= 1ULL << (c & 63);
  }
};

// -- scalar references: the pre-SIMD repository kernels -------------------

void ref_project(const PackedMatrix& p, const float* v, float* out) {
  double total = 0.0;
  for (std::int64_t i = 0; i < p.cols; ++i) total += v[i];
  for (std::int64_t r = 0; r < p.rows; ++r) {
    const std::uint64_t* row = p.bits.data() + r * p.words_per_row;
    double pos = 0.0;
    for (std::int64_t w = 0; w < p.words_per_row; ++w) {
      std::uint64_t bits = row[w];
      const std::int64_t base = w << 6;
      while (bits != 0) {
        pos += v[base + std::countr_zero(bits)];
        bits &= bits - 1;
      }
    }
    out[r] = static_cast<float>(2.0 * pos - total);
  }
}

void ref_decode(const PackedMatrix& p, const float* g, float* out) {
  double total = 0.0;
  for (std::int64_t r = 0; r < p.rows; ++r) total += g[r];
  for (std::int64_t i = 0; i < p.cols; ++i) out[i] = 0.0f;
  for (std::int64_t r = 0; r < p.rows; ++r) {
    const float gr = g[r];
    if (gr == 0.0f) continue;
    const std::uint64_t* row = p.bits.data() + r * p.words_per_row;
    for (std::int64_t w = 0; w < p.words_per_row; ++w) {
      std::uint64_t bits = row[w];
      const std::int64_t base = w << 6;
      while (bits != 0) {
        out[base + std::countr_zero(bits)] += gr;
        bits &= bits - 1;
      }
    }
  }
  const auto t = static_cast<float>(total);
  for (std::int64_t i = 0; i < p.cols; ++i) out[i] = 2.0f * out[i] - t;
}

double ref_dot_packed(const float* m, const hd::Hypervector& h) {
  const std::int64_t dim = h.dim();
  double total = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) total += m[i];
  const std::uint64_t* words = h.words();
  double positive = 0.0;
  for (std::int64_t w = 0; w < static_cast<std::int64_t>(h.word_count()); ++w) {
    std::uint64_t bits = words[w];
    const std::int64_t base = w << 6;
    while (bits != 0) {
      positive += m[base + std::countr_zero(bits)];
      bits &= bits - 1;
    }
  }
  return 2.0 * positive - total;
}

void ref_axpy(float* m, float alpha, const hd::Hypervector& h) {
  const std::int64_t dim = h.dim();
  for (std::int64_t i = 0; i < dim; ++i) m[i] -= alpha;
  const float twice = 2.0f * alpha;
  const std::uint64_t* words = h.words();
  for (std::int64_t w = 0; w < static_cast<std::int64_t>(h.word_count()); ++w) {
    std::uint64_t bits = words[w];
    const std::int64_t base = w << 6;
    while (bits != 0) {
      m[base + std::countr_zero(bits)] += twice;
      bits &= bits - 1;
    }
  }
}

std::int64_t ref_hamming(const hd::Hypervector& a, const hd::Hypervector& b) {
  std::int64_t d = 0;
  for (std::size_t w = 0; w < a.word_count(); ++w)
    d += std::popcount(a.words()[w] ^ b.words()[w]);
  return d;
}

template <typename Fn>
double best_sps(int reps, std::int64_t iters, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    for (std::int64_t i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.seconds());
  }
  return static_cast<double>(iters) / best;
}

struct Record {
  std::string kernel;
  std::int64_t dim = 0, features = 0;
  double scalar_sps = 0.0;
  double simd_sps = 0.0;
  bool parity_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int reps = args.get_int("reps", 3);
  const std::string json_path = args.get("json", "BENCH_hd.json");

  util::Table table({"kernel", "dim", "features", "scalar/s", "simd/s", "speedup"});
  std::vector<Record> records;
  bool all_ok = true;

  auto push = [&](Record rec) {
    table.add_row({rec.kernel, util::cell(static_cast<int>(rec.dim)),
                   rec.features != 0 ? util::cell(static_cast<int>(rec.features)) : "-",
                   util::cell(rec.scalar_sps, 1), util::cell(rec.simd_sps, 1),
                   util::cell(rec.simd_sps / rec.scalar_sps, 2) + "x"});
    all_ok = all_ok && rec.parity_ok;
    records.push_back(std::move(rec));
  };

  // -- projection encode / decode ----------------------------------------
  struct ProjShape {
    std::int64_t dim, features;
  };
  for (const ProjShape s : {ProjShape{3000, 100}, ProjShape{10000, 100},
                            ProjShape{3000, 640}, ProjShape{10000, 640}}) {
    util::Rng rng(1);
    const hd::RandomProjection proj(s.dim, s.features, rng);
    const PackedMatrix packed(proj);
    const auto v = random_values(s.features, 2);
    std::vector<float> z_ref(static_cast<std::size_t>(s.dim));
    ref_project(packed, v.data(), z_ref.data());
    const tensor::Tensor z = proj.project(v.data());
    const float tol = 1e-4f * std::sqrt(static_cast<float>(s.features)) + 1e-4f;
    bool ok = true;
    for (std::int64_t r = 0; r < s.dim; ++r)
      if (std::fabs(z[r] - z_ref[static_cast<std::size_t>(r)]) > tol) ok = false;

    Record enc;
    enc.kernel = "project_encode";
    enc.dim = s.dim;
    enc.features = s.features;
    enc.parity_ok = ok;
    const std::int64_t iters = 4'000'000 / s.dim + 1;
    enc.scalar_sps = best_sps(reps, iters, [&] {
      ref_project(packed, v.data(), z_ref.data());
      hd::Hypervector::from_sign(z_ref.data(), s.dim);
    });
    enc.simd_sps = best_sps(reps, iters, [&] { proj.encode(v.data()); });
    push(std::move(enc));

    if (s.features == 100) {
      const auto g = random_values(s.dim, 3);
      std::vector<float> back_ref(static_cast<std::size_t>(s.features));
      ref_decode(packed, g.data(), back_ref.data());
      tensor::Tensor g_t(tensor::Shape{s.dim});
      std::copy(g.begin(), g.end(), g_t.data());
      const tensor::Tensor back = proj.decode(g_t);
      bool dok = true;
      const float dtol = 1e-3f * std::sqrt(static_cast<float>(s.dim)) + 1e-3f;
      for (std::int64_t i = 0; i < s.features; ++i)
        if (std::fabs(back[i] - back_ref[static_cast<std::size_t>(i)]) > dtol) dok = false;

      Record dec;
      dec.kernel = "decode";
      dec.dim = s.dim;
      dec.features = s.features;
      dec.parity_ok = dok;
      dec.scalar_sps = best_sps(reps, iters, [&] {
        ref_decode(packed, g.data(), back_ref.data());
      });
      dec.simd_sps = best_sps(reps, iters, [&] { proj.decode(g_t); });
      push(std::move(dec));
    }
  }

  // -- packed float dot & axpy (the MASS primitives) ----------------------
  for (const std::int64_t dim : {3000LL, 10000LL}) {
    util::Rng rng(4);
    const hd::Hypervector h = hd::Hypervector::random(dim, rng);
    auto m = random_values(dim, 5);
    const double want = ref_dot_packed(m.data(), h);
    const double got = hd::dot(m.data(), h);
    const double tol = 1e-3 * std::sqrt(static_cast<double>(dim));
    Record dotr;
    dotr.kernel = "float_dot_packed";
    dotr.dim = dim;
    dotr.parity_ok = std::fabs(want - got) <= tol;
    const std::int64_t iters = 40'000'000 / dim + 1;
    volatile double sink = 0.0;
    dotr.scalar_sps = best_sps(reps, iters, [&] { sink = ref_dot_packed(m.data(), h); });
    dotr.simd_sps = best_sps(reps, iters, [&] { sink = hd::dot(m.data(), h); });
    (void)sink;
    push(std::move(dotr));

    auto m_ref = m;
    ref_axpy(m_ref.data(), 0.125f, h);
    auto m_simd = m;
    hd::axpy(m_simd.data(), 0.125f, h);
    bool aok = true;
    for (std::int64_t i = 0; i < dim; ++i)
      if (std::fabs(m_ref[static_cast<std::size_t>(i)] - m_simd[static_cast<std::size_t>(i)]) >
          1e-5f)
        aok = false;
    Record ax;
    ax.kernel = "axpy";
    ax.dim = dim;
    ax.parity_ok = aok;
    ax.scalar_sps = best_sps(reps, iters, [&] { ref_axpy(m.data(), 1e-6f, h); });
    ax.simd_sps = best_sps(reps, iters, [&] { hd::axpy(m.data(), -1e-6f, h); });
    push(std::move(ax));
  }

  // -- binary-binary Hamming ---------------------------------------------
  for (const std::int64_t dim : {3000LL, 10000LL}) {
    util::Rng rng(8);
    const hd::Hypervector a = hd::Hypervector::random(dim, rng);
    const hd::Hypervector b = hd::Hypervector::random(dim, rng);
    Record hr;
    hr.kernel = "hamming";
    hr.dim = dim;
    hr.parity_ok = a.hamming(b) == ref_hamming(a, b);  // exact integers
    const std::int64_t iters = 400'000'000 / dim + 1;
    volatile std::int64_t hsink = 0;
    hr.scalar_sps = best_sps(reps, iters, [&] { hsink = ref_hamming(a, b); });
    hr.simd_sps = best_sps(reps, iters, [&] { hsink = a.hamming(b); });
    (void)hsink;
    push(std::move(hr));
  }

  // -- batched bank prediction (gemm_bt path vs per-query scalar walk) ----
  {
    const std::int64_t dim = 10000, classes = 10, n = 256;
    util::Rng rng(11);
    hd::HdClassifier clf(classes, dim);
    for (std::int64_t c = 0; c < classes; ++c)
      for (std::int64_t d = 0; d < dim; ++d) clf.class_vector(c)[d] = rng.normal();
    std::vector<hd::Hypervector> queries;
    for (std::int64_t i = 0; i < n; ++i)
      queries.push_back(hd::Hypervector::random(dim, rng));

    auto ref_predict_all = [&] {
      std::vector<std::int64_t> out(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t best = 0;
        double best_dot = ref_dot_packed(clf.class_vector(0), queries[static_cast<std::size_t>(i)]);
        for (std::int64_t c = 1; c < classes; ++c) {
          const double d = ref_dot_packed(clf.class_vector(c), queries[static_cast<std::size_t>(i)]);
          if (d > best_dot) {
            best_dot = d;
            best = c;
          }
        }
        out[static_cast<std::size_t>(i)] = best;
      }
      return out;
    };

    const std::vector<std::int64_t> want = ref_predict_all();
    const std::vector<std::int64_t> got = clf.predict_all(queries, hd::Similarity::kDot);
    Record pr;
    pr.kernel = "predict_batch256";
    pr.dim = dim;
    pr.parity_ok = want == got;
    pr.scalar_sps = best_sps(reps, 1, ref_predict_all) * static_cast<double>(n);
    pr.simd_sps =
        best_sps(reps, 1, [&] { clf.predict_all(queries, hd::Similarity::kDot); }) *
        static_cast<double>(n);
    push(std::move(pr));
  }

  std::printf("\n== HD kernels, isa %s width %d (parity %s) ==\n%s",
              tensor::simd::kIsaName, tensor::simd::kWidth,
              all_ok ? "verified" : "FAILED", table.to_string().c_str());

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(out, "{\n  \"isa\": \"%s\",\n  \"width\": %d,\n  \"results\": [\n",
                 tensor::simd::kIsaName, tensor::simd::kWidth);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const Record& r = records[i];
      std::fprintf(out,
                   "    {\"kernel\": \"%s\", \"dim\": %lld, \"features\": %lld, "
                   "\"scalar_samples_per_sec\": %.1f, \"simd_samples_per_sec\": %.1f, "
                   "\"speedup\": %.3f, \"parity\": \"%s\"}%s\n",
                   r.kernel.c_str(), static_cast<long long>(r.dim),
                   static_cast<long long>(r.features), r.scalar_sps, r.simd_sps,
                   r.simd_sps / r.scalar_sps, r.parity_ok ? "ok" : "FAIL",
                   i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not open %s for writing\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
