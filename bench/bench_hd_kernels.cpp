// Microbenchmarks of the HD computing kernels (google-benchmark).
//
// Covers the operations the paper accelerates with CUDA constant memory
// (Sec. VI-A): random-projection encoding, float-vs-packed similarity, the
// MASS update, binary-binary Hamming similarity, and the VanillaHD
// ID-level encoder — plus the bit-packed vs naive unpacked ablation.
#include <benchmark/benchmark.h>

#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "hd/projection.hpp"
#include "hd/vanilla.hpp"
#include "util/rng.hpp"

namespace {

using namespace nshd;

std::vector<float> random_values(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

void BM_RandomProjectionEncode(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  const std::int64_t features = state.range(1);
  util::Rng rng(1);
  const hd::RandomProjection proj(dim, features, rng);
  const auto v = random_values(features, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proj.encode(v.data()));
  }
  state.SetItemsProcessed(state.iterations() * dim * features);
}
BENCHMARK(BM_RandomProjectionEncode)
    ->Args({3000, 100})
    ->Args({10000, 100})
    ->Args({3000, 640});

void BM_ProjectionDecode(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  util::Rng rng(3);
  const hd::RandomProjection proj(dim, 100, rng);
  tensor::Tensor g(tensor::Shape{dim});
  for (float& x : g.span()) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(proj.decode(g));
  }
  state.SetItemsProcessed(state.iterations() * dim * 100);
}
BENCHMARK(BM_ProjectionDecode)->Arg(3000)->Arg(10000);

void BM_FloatDotPacked(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  util::Rng rng(4);
  const hd::Hypervector h = hd::Hypervector::random(dim, rng);
  const auto m = random_values(dim, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::dot(m.data(), h));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_FloatDotPacked)->Arg(3000)->Arg(10000);

// Ablation: the same similarity computed on unpacked +-1 floats (what a
// naive implementation without the paper's binary trick would do).
void BM_FloatDotUnpacked(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  util::Rng rng(6);
  const hd::Hypervector h = hd::Hypervector::random(dim, rng);
  const tensor::Tensor unpacked = h.to_tensor();
  const auto m = random_values(dim, 7);
  for (auto _ : state) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < dim; ++i) sum += m[static_cast<std::size_t>(i)] * unpacked[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_FloatDotUnpacked)->Arg(3000)->Arg(10000);

void BM_BinaryHamming(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  util::Rng rng(8);
  const hd::Hypervector a = hd::Hypervector::random(dim, rng);
  const hd::Hypervector b = hd::Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_BinaryHamming)->Arg(3000)->Arg(10000);

void BM_MassEpoch(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  const std::int64_t classes = 10, samples = 100;
  util::Rng rng(9);
  std::vector<hd::Hypervector> hvs;
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < samples; ++i) {
    hvs.push_back(hd::Hypervector::random(dim, rng));
    labels.push_back(i % classes);
  }
  hd::HdClassifier clf(classes, dim);
  clf.bundle_init(hvs, labels);
  hd::MassConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.mass_epoch(hvs, labels, config));
  }
  state.SetItemsProcessed(state.iterations() * samples * classes * dim);
}
BENCHMARK(BM_MassEpoch)->Arg(3000)->Arg(10000);

void BM_IdLevelEncode(benchmark::State& state) {
  const std::int64_t features = state.range(0);
  hd::IdLevelConfig config;
  config.dim = 3000;
  const hd::IdLevelEncoder encoder(features, config);
  const auto v = random_values(features, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(v.data()));
  }
  state.SetItemsProcessed(state.iterations() * features * config.dim);
}
BENCHMARK(BM_IdLevelEncode)->Arg(256)->Arg(3072);

void BM_QuantizedPredict(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  util::Rng rng(11);
  std::vector<hd::Hypervector> classes;
  for (int c = 0; c < 10; ++c) classes.push_back(hd::Hypervector::random(dim, rng));
  const hd::Hypervector query = hd::Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hd::HdClassifier::predict_quantized(classes, query));
  }
  state.SetItemsProcessed(state.iterations() * 10 * dim);
}
BENCHMARK(BM_QuantizedPredict)->Arg(3000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
